(* Tests for tape merge sort and the Corollary 7 deterministic
   algorithms: correctness against the reference deciders, O(log N)
   scan growth, O(1) internal registers. *)

module G = Problems.Generators
module D = Problems.Decide
module I = Problems.Instance

let check = Alcotest.(check bool)


let test_sort_basic () =
  let sorted, _ = Extsort.sort [ "10"; "01"; "11"; "00" ] in
  Alcotest.(check (list string)) "sorted" [ "00"; "01"; "10"; "11" ] sorted;
  let sorted1, _ = Extsort.sort [ "x" ] in
  Alcotest.(check (list string)) "singleton" [ "x" ] sorted1;
  let sorted0, _ = Extsort.sort [] in
  Alcotest.(check (list string)) "empty" [] sorted0

let test_sort_duplicates_and_lengths () =
  let sorted, _ = Extsort.sort [ "01"; "0"; "01"; ""; "1" ] in
  Alcotest.(check (list string)) "mixed" [ ""; "0"; "01"; "01"; "1" ] sorted

let prop_sort_matches_stdlib =
  QCheck.Test.make ~name:"tape sort = List.sort" ~count:200
    QCheck.(list (string_of_size (Gen.int_range 0 6)))
    (fun items ->
      let expected = List.sort String.compare items in
      let got, _ = Extsort.sort items in
      got = expected)

let test_sort_registers_constant () =
  List.iter
    (fun n ->
      let items = List.init n (fun i -> string_of_int ((i * 31) mod n)) in
      let _, rep = Extsort.sort items in
      check (Printf.sprintf "n=%d regs" n) true (rep.Extsort.register_peak <= 8))
    [ 2; 64; 1024 ]

let test_scan_growth_logarithmic () =
  let st = Random.State.make [| 40 |] in
  let points =
    List.map
      (fun m ->
        let inst = G.yes_instance st D.Check_sort ~m ~n:8 in
        let _, rep = Extsort.check_sort inst in
        check "within closed-form bound" true
          (rep.Extsort.scans <= Extsort.theoretical_scan_bound ~n:rep.Extsort.n);
        (rep.Extsort.n, rep.Extsort.scans))
      [ 16; 32; 64; 128; 256; 512; 1024 ]
  in
  let slope, _, r2 = Util.Stats.log2_fit (Array.of_list points) in
  check (Printf.sprintf "log fit r2=%.3f" r2) true (r2 > 0.98);
  check (Printf.sprintf "slope=%.2f" slope) true (slope > 2.0 && slope < 16.0)

let test_deciders_match_reference () =
  let st = Random.State.make [| 41 |] in
  List.iter
    (fun prob ->
      for _ = 1 to 60 do
        let m = 1 + Random.State.int st 24 in
        let inst, label = G.labelled st prob ~m ~n:6 in
        let got, _ = Extsort.decide prob inst in
        check (D.problem_name prob) true (got = label)
      done)
    D.all_problems

let test_set_equality_multiplicities () =
  (* equal as sets, different multiplicities *)
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 20 do
    let inst = G.set_yes_multiset_no st ~m:6 ~n:6 in
    check "set-eq yes" true (fst (Extsort.set_equality inst));
    check "multiset-eq no" false (fst (Extsort.multiset_equality inst))
  done

let test_degenerate_instances () =
  let empty = I.decode "" in
  check "empty checksort" true (fst (Extsort.check_sort empty));
  check "empty set-eq" true (fst (Extsort.set_equality empty));
  let single = I.decode "0#0#" in
  check "singleton" true (fst (Extsort.multiset_equality single));
  let single_no = I.decode "0#1#" in
  check "singleton no" false (fst (Extsort.multiset_equality single_no))

let test_short_instances_round_trip () =
  (* Corollary 7: the SHORT reduction output is still decided correctly *)
  let st = Random.State.make [| 43 |] in
  let m = 4 in
  let space = G.Checkphi.default_space ~m ~n:(m * m * m) in
  let phi = G.Checkphi.phi space in
  for _ = 1 to 5 do
    let y = G.Checkphi.yes st space and n = G.Checkphi.no st space in
    check "short yes" true (fst (Extsort.check_sort (Problems.Short.reduce ~phi y)));
    check "short no" false (fst (Extsort.check_sort (Problems.Short.reduce ~phi n)))
  done

let test_kway_sort () =
  let items = List.init 500 (fun i -> Printf.sprintf "%04d" ((i * 37) mod 500)) in
  let expected = List.sort String.compare items in
  List.iter
    (fun ways ->
      let got, rep = Extsort.sort_k ~ways items in
      check (Printf.sprintf "%d-way sorted" ways) true (got = expected);
      check "tapes = ways + data" true (rep.Extsort.tapes = ways + 1))
    [ 2; 3; 4; 7 ];
  (* wider merges use fewer scans at this size *)
  let _, r2 = Extsort.sort_k ~ways:2 items in
  let _, r4 = Extsort.sort_k ~ways:4 items in
  check "4-way beats 2-way" true (r4.Extsort.scans < r2.Extsort.scans);
  try
    ignore (Extsort.sort_k ~ways:1 items);
    Alcotest.fail "ways=1 accepted"
  with Invalid_argument _ -> ()

let prop_kway_matches_stdlib =
  QCheck.Test.make ~name:"k-way sort = List.sort" ~count:100
    QCheck.(pair (int_range 2 6) (list (string_of_size (Gen.int_range 0 5))))
    (fun (ways, items) ->
      let expected = List.sort String.compare items in
      let got, _ = Extsort.sort_k ~ways items in
      got = expected)

let test_budget_enforcement () =
  let st = Random.State.make [| 47 |] in
  let inst = G.yes_instance st D.Check_sort ~m:64 ~n:8 in
  (* generous budget: fine *)
  let _, rep =
    Extsort.check_sort
      ~budget:{ Tape.Group.max_scans = Some 1000; max_internal = Some 100 }
      inst
  in
  check "runs under a generous budget" true (rep.Extsort.scans <= 1000);
  (* a budget below the measured need: the run is stopped mid-flight *)
  check "tight scan budget enforced" true
    (try
       ignore
         (Extsort.check_sort
            ~budget:
              { Tape.Group.max_scans = Some (rep.Extsort.scans - 1); max_internal = None }
            inst);
       false
     with Tape.Budget_exceeded _ -> true);
  check "tight internal budget enforced" true
    (try
       ignore
         (Extsort.check_sort
            ~budget:{ Tape.Group.max_scans = None; max_internal = Some 1 }
            inst);
       false
     with Tape.Budget_exceeded _ -> true)

let test_disjoint_decider () =
  let st = Random.State.make [| 46 |] in
  for _ = 1 to 40 do
    let inst, label = Problems.Disjoint.labelled st ~m:8 ~n:8 in
    let got, rep = Extsort.disjoint inst in
    check "matches reference" true (got = label);
    check "log scans" true
      (rep.Extsort.scans <= Extsort.theoretical_scan_bound ~n:rep.Extsort.n)
  done;
  check "empty disjoint" true (fst (Extsort.disjoint (I.decode "")))

let prop_sorting_solves_checksort =
  (* Corollary 10 direction: CHECK-SORT via sorting: sorted(xs) = ys *)
  QCheck.Test.make ~name:"sort-based check_sort = reference" ~count:150
    QCheck.(pair (int_range 1 10) (int_bound 100000))
    (fun (m, seed) ->
      let st = Random.State.make [| seed |] in
      let inst, _ = G.labelled st D.Check_sort ~m ~n:5 in
      fst (Extsort.check_sort inst) = D.check_sort inst)

let () =
  Alcotest.run "extsort"
    [
      ( "sort",
        [
          Alcotest.test_case "basic" `Quick test_sort_basic;
          Alcotest.test_case "duplicates/lengths" `Quick test_sort_duplicates_and_lengths;
          QCheck_alcotest.to_alcotest prop_sort_matches_stdlib;
          Alcotest.test_case "O(1) registers" `Quick test_sort_registers_constant;
          Alcotest.test_case "O(log N) scans" `Quick test_scan_growth_logarithmic;
          Alcotest.test_case "k-way merge" `Quick test_kway_sort;
          QCheck_alcotest.to_alcotest prop_kway_matches_stdlib;
        ] );
      ( "corollary 7 deciders",
        [
          Alcotest.test_case "match reference" `Quick test_deciders_match_reference;
          Alcotest.test_case "set vs multiset" `Quick test_set_equality_multiplicities;
          Alcotest.test_case "degenerate" `Quick test_degenerate_instances;
          Alcotest.test_case "SHORT instances" `Quick test_short_instances_round_trip;
          Alcotest.test_case "disjoint sets" `Quick test_disjoint_decider;
          Alcotest.test_case "budget enforcement" `Quick test_budget_enforcement;
          QCheck_alcotest.to_alcotest prop_sorting_solves_checksort;
        ] );
    ]
