(* Experiment + micro-benchmark driver.

   Usage:
     dune exec bench/main.exe               - all experiment tables + benches
     dune exec bench/main.exe -- exp4       - one experiment
     dune exec bench/main.exe -- tables     - experiment tables only
     dune exec bench/main.exe -- micro      - Bechamel micro-benchmarks only *)

open Bechamel
open Toolkit

let micro_tests () =
  let st = Random.State.make [| 123 |] in
  let module G = Problems.Generators in
  let module D = Problems.Decide in
  let fp_inst = G.yes_instance st D.Multiset_equality ~m:64 ~n:12 in
  let sort_items =
    List.init 256 (fun i -> Printf.sprintf "%05d" ((i * 7919) mod 256))
  in
  let cs_inst = G.yes_instance st D.Check_sort ~m:128 ~n:10 in
  let space = G.Checkphi.default_space ~m:8 ~n:16 in
  let lm =
    Listmachine.Machines.staircase_checkphi ~space
      ~chains:(Listmachine.Machines.chains_needed ~space)
      ~optimistic:false
  in
  let lm_values =
    let i = G.Checkphi.yes st space in
    Array.append (Problems.Instance.xs i) (Problems.Instance.ys i)
  in
  let ra_db = Relalg.instance_db (G.yes_instance st D.Set_equality ~m:64 ~n:10) in
  let xml_stream =
    Xmlq.Doc.serialize
      (Xmlq.Doc.of_instance (G.yes_instance st D.Set_equality ~m:32 ~n:10))
  in
  let tm = Turing.Zoo.pair_equality () in
  [
    Test.make ~name:"fingerprint-multiset-eq-m64"
      (Staged.stage (fun () -> ignore (Fingerprint.run st fp_inst)));
    Test.make ~name:"tape-merge-sort-256"
      (Staged.stage (fun () -> ignore (Extsort.sort sort_items)));
    Test.make ~name:"checksort-decider-m128"
      (Staged.stage (fun () -> ignore (Extsort.check_sort cs_inst)));
    Test.make ~name:"staircase-lm-run-m8"
      (Staged.stage (fun () ->
           ignore (Listmachine.Nlm.run lm ~values:lm_values ~choices:(fun _ -> 0))));
    Test.make ~name:"sortedness-phi-4096"
      (Staged.stage (fun () ->
           ignore (Util.Permutation.sortedness (Util.Permutation.reverse_binary 4096))));
    Test.make ~name:"relalg-symdiff-m64"
      (Staged.stage (fun () ->
           ignore (Relalg.eval_streaming ra_db (Relalg.symmetric_difference "R1" "R2"))));
    Test.make ~name:"xml-stream-filter-m32"
      (Staged.stage (fun () -> ignore (Xmlq.Stream_filter.figure1_filter xml_stream)));
    Test.make ~name:"tm-pair-equality-n32"
      (Staged.stage (fun () ->
           ignore
             (Turing.Machine.run_deterministic tm
                ~input:(String.make 32 '0' ^ "#" ^ String.make 32 '0' ^ "#"))));
  ]

let run_micro () =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock, ns/run):";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-34s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-34s (no estimate)\n" name)
        analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ]) (micro_tests ()))

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      Harness.Experiments.run_all ();
      run_micro ()
  | [ "tables" ] -> Harness.Experiments.run_all ()
  | [ "micro" ] -> run_micro ()
  | [ name ] -> (
      match List.assoc_opt name Harness.Experiments.all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s, tables, micro\n" name
            (String.concat ", " (List.map fst Harness.Experiments.all));
          exit 1)
  | _ ->
      prerr_endline "usage: main.exe [expN | tables | micro]";
      exit 1
