(* Tests for the pluggable cell-storage backends (lib/tape/device.ml)
   and the order-preserving tuple codec (lib/tape/tuple.ml).

   The load-bearing properties:
   - the tuple encoding round-trips, and [Bytes]-level comparison of
     encodings agrees with the semantic tuple order (so run files can
     be merged without decoding);
   - the three backends are observationally identical above the device
     seam: same cell contents, same reversal/ledger accounting, same
     fault detections under the same seeded plan. *)

module Tu = Tape.Tuple

let check_int = Alcotest.(check int)
let sign x = compare x 0

(* ------------------------------------------------------------------ *)
(* tuple codec *)

let elt_gen =
  let open QCheck.Gen in
  let any_char = map Char.chr (int_range 0 255) in
  (* arbitrary bytes on purpose: the terminator escaping (0x00) and the
     top byte (0xFF) are the interesting cases *)
  let str =
    map (fun s -> Tu.Str s) (string_size ~gen:any_char (int_range 0 10))
  in
  let small_int = map (fun i -> Tu.Int i) (int_range (-1000) 1000) in
  let edge_int =
    map
      (fun i -> Tu.Int i)
      (oneofl
         [
           0; 1; -1; 255; 256; -255; -256; 65535; -65536; max_int; min_int;
           1 lsl 40; -(1 lsl 40);
         ])
  in
  frequency [ (3, str); (3, small_int); (1, edge_int) ]

let pp_tuple t =
  "["
  ^ String.concat "; "
      (List.map
         (function
           | Tu.Str s -> Printf.sprintf "Str %S" s
           | Tu.Int i -> Printf.sprintf "Int %d" i)
         t)
  ^ "]"

let arb_tuple =
  QCheck.make ~print:pp_tuple QCheck.Gen.(list_size (int_range 0 5) elt_gen)

let prop_tuple_round_trip =
  QCheck.Test.make ~name:"tuple pack/unpack round-trip" ~count:500 arb_tuple
    (fun t -> Tu.unpack (Tu.pack t) = t)

let prop_tuple_order =
  QCheck.Test.make ~name:"bytewise order of encodings = tuple order"
    ~count:500
    (QCheck.pair arb_tuple arb_tuple)
    (fun (a, b) ->
      sign (Tu.compare_packed (Tu.pack a) (Tu.pack b))
      = sign (Tu.compare_tuple a b))

let test_range_prefix () =
  (* every tuple extending [p] sorts strictly inside p's range *)
  let p = [ Tu.Str "run"; Tu.Int 3 ] in
  let lo, hi = Tu.range_prefix p in
  let inside = Tu.pack (p @ [ Tu.Str "x" ]) in
  Alcotest.(check bool) "lo < member" true (Tu.compare_packed lo inside < 0);
  Alcotest.(check bool) "member < hi" true (Tu.compare_packed inside hi < 0)

(* ------------------------------------------------------------------ *)
(* backends *)

let spill =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "stlb-test-device-%d" (Unix.getpid ()))

(* deliberately tiny blocks/shards so a few dozen cells already spill
   through the bounded caches *)
let specs () =
  [
    ("mem", Tape.Device.Mem);
    ("file", Tape.Device.file_spec ~block_bytes:256 ~cache_blocks:2 spill);
    ("shard", Tape.Device.shard_spec ~shard_bytes:256 ~cache_shards:2 spill);
  ]

(* One deterministic workload on one backend: preload, a forward scan
   that reads every cell and rewrites every third one reversed, a
   rewind, a verification scan - all under a seeded fault plan (no
   transients, so the walk itself never raises). Returns everything
   observable above the seam. *)
let walk ~seed items spec =
  let r = Obs.Ledger.Recorder.create ~label:"parity" () in
  let g = Tape.Group.create ~device:spec () in
  Obs.Ledger.Recorder.observe r g;
  let codec = Tape.Device.Codec.tuple_string ~max_len:12 in
  let t = Tape.Group.tape g ~name:"cells" ~codec ~blank:"" () in
  Tape.preload t items;
  let plan =
    Faults.Plan.create ~seed
      ~rates:
        {
          Faults.bit_flip = 0.1;
          stuck_read = 0.05;
          torn_write = 0.1;
          transient = 0.0;
        }
  in
  Faults.attach_string plan t;
  let n = List.length items in
  let seen = ref [] in
  for i = 0 to n - 1 do
    let v = Tape.read t in
    seen := v :: !seen;
    if i mod 3 = 0 then
      Tape.write t
        (String.init (String.length v) (fun j ->
             v.[String.length v - 1 - j]));
    Tape.move t Tape.Right
  done;
  Tape.rewind t;
  for _ = 0 to n - 1 do
    seen := Tape.read t :: !seen;
    Tape.move t Tape.Right
  done;
  let contents = Tape.to_list t in
  let l = Obs.Ledger.Recorder.ledger ~n r in
  let faults = Tape.Group.faults_injected g in
  Tape.Group.close_all g;
  ( List.rev !seen,
    contents,
    ( l.Obs.Ledger.scans,
      l.Obs.Ledger.reversals,
      l.Obs.Ledger.internal_peak,
      l.Obs.Ledger.tapes,
      l.Obs.Ledger.faults_injected ),
    faults )

let arb_items =
  QCheck.make
    ~print:(fun l -> String.concat "," l)
    QCheck.Gen.(
      list_size (int_range 1 40)
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)))

let prop_backend_parity =
  QCheck.Test.make ~name:"mem/file/shard backends are indistinguishable"
    ~count:30
    (QCheck.pair arb_items QCheck.(make Gen.(int_bound 1_000_000)))
    (fun (items, seed) ->
      match List.map (fun (_, s) -> walk ~seed items s) (specs ()) with
      | [] -> true
      | reference :: rest -> List.for_all (( = ) reference) rest)

let test_spill_files_deleted () =
  (* close_all must leave nothing behind - spill files are scratch *)
  let items = List.init 64 (fun i -> Printf.sprintf "item-%02d" i) in
  List.iter
    (fun (name, spec) ->
      let _ = walk ~seed:7 items spec in
      let leftover =
        if Sys.file_exists spill then Array.length (Sys.readdir spill) else 0
      in
      check_int (name ^ ": no leftover spill entries") 0 leftover)
    (specs ());
  if Sys.file_exists spill then Unix.rmdir spill

let test_file_device_io () =
  (* the byte-backed devices must actually touch their backing files
     once the data exceeds the cache; mem must not *)
  let items = List.init 200 (fun i -> Printf.sprintf "row-%03d-xx" i) in
  let io spec =
    let g = Tape.Group.create ~device:spec () in
    let codec = Tape.Device.Codec.tuple_string ~max_len:12 in
    let t = Tape.Group.tape g ~name:"cells" ~codec ~blank:"" () in
    Tape.preload t items;
    for _ = 1 to List.length items do
      ignore (Tape.read t);
      Tape.move t Tape.Right
    done;
    let s = Tape.Group.device_stats g in
    Tape.Group.close_all g;
    s.Tape.Device.io_read_bytes + s.Tape.Device.io_write_bytes
  in
  List.iter
    (fun (name, spec) ->
      let bytes = io spec in
      match name with
      | "mem" -> check_int "mem does no backing I/O" 0 bytes
      | _ ->
          Alcotest.(check bool)
            (name ^ " streams through backing files")
            true (bytes > 0))
    (specs ());
  if Sys.file_exists spill then Unix.rmdir spill

let () =
  Alcotest.run "device"
    [
      ( "tuple",
        [
          QCheck_alcotest.to_alcotest prop_tuple_round_trip;
          QCheck_alcotest.to_alcotest prop_tuple_order;
          Alcotest.test_case "range_prefix" `Quick test_range_prefix;
        ] );
      ( "backends",
        [
          QCheck_alcotest.to_alcotest prop_backend_parity;
          Alcotest.test_case "spill files deleted" `Quick
            test_spill_files_deleted;
          Alcotest.test_case "backing I/O happens (and only off-mem)" `Quick
            test_file_device_io;
        ] );
    ]
