(* The query front-end: parser/pretty round-trip laws, compiled-vs-
   naive semantics, the differential fuzzer's determinism contract
   (bit-identical campaigns for -j 1/2/4 and mem/file/shard devices),
   the injected-bug negative control, and the pinned regression corpus
   of shrunk counterexample programs. *)

module Q = Query

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* helpers *)

let parse_expr s =
  match Q.Parser.parse_expr_string s with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse error: %s" (Q.Parser.error_to_string e)

(* execute the last statement of [src] through the tape pipeline and
   compare against the naive oracle *)
let differential ?device src =
  match Q.Parser.parse_program src with
  | Error e -> Alcotest.failf "parse error: %s" (Q.Parser.error_to_string e)
  | Ok stmts ->
      let env = ref [] in
      let outcome = ref None in
      List.iter
        (fun stmt ->
          match stmt with
          | Q.Ast.Bind (x, e) ->
              let k, rows = Q.Naive.eval !env e in
              env := (x, (k, rows)) :: !env
          | Q.Ast.Eval e -> (
              let _, want = Q.Naive.eval !env e in
              match Q.Exec.run ?device ~env:!env e with
              | Error m -> Alcotest.failf "exec error: %s" m
              | Ok o ->
                  check "compiled = naive" true (o.Q.Exec.rows = want);
                  outcome := Some o))
        stmts;
      match !outcome with
      | Some o -> o
      | None -> Alcotest.fail "program had no Eval statement"

let spill =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "stlb-test-query-%d" (Unix.getpid ()))

let device_specs () =
  [
    ("mem", Tape.Device.Mem);
    ("file", Tape.Device.file_spec ~block_bytes:256 ~cache_blocks:2 spill);
    ("shard", Tape.Device.shard_spec ~shard_bytes:256 ~cache_shards:2 spill);
  ]

(* ------------------------------------------------------------------ *)
(* parsing and printing *)

let test_parse_shapes () =
  (match parse_expr "r1 + r2 - r3" with
  | Q.Ast.Diff (Q.Ast.Union _, _) -> ()
  | _ -> Alcotest.fail "sum ops associate left");
  (match parse_expr "r1 o r2 o r3" with
  | Q.Ast.Compose (Q.Ast.Compose _, _) -> ()
  | _ -> Alcotest.fail "compose associates left");
  (match parse_expr "r1 + r2 o r3" with
  | Q.Ast.Union (_, Q.Ast.Compose _) -> ()
  | _ -> Alcotest.fail "compose binds tighter than sum");
  match parse_expr "[<1, 10>, <2, 20>]" with
  | Q.Ast.Lit [ [ "1"; "10" ]; [ "2"; "20" ] ] -> ()
  | _ -> Alcotest.fail "literal tuples"

let test_parse_comprehension () =
  match parse_expr "[ <x, z> | <x, y> <- r3, <y2, z> <- r4, y == y2, x != \"0\" ]" with
  | Q.Ast.Comp ([ Q.Ast.Svar "x"; Q.Ast.Svar "z" ], [ _; _; _; _ ]) -> ()
  | _ -> Alcotest.fail "comprehension shape"

let test_parse_errors_located () =
  let cases =
    [ "r1 +"; "[<1,2>"; "[<1,2> <3>]"; "<1>"; "xfilter(r1"; "\"unterminated";
      "[ <x> | ]"; "r1 ++ r2"; "!"; "[<1,\x01>]" ]
  in
  List.iter
    (fun src ->
      match Q.Parser.parse_program src with
      | Ok _ -> Alcotest.failf "expected parse error for %S" src
      | Error e ->
          check ("line positive for " ^ src) true (e.Q.Parser.line >= 1);
          check ("col positive for " ^ src) true (e.Q.Parser.col >= 1))
    cases

let test_parse_never_raises_qcheck =
  QCheck.Test.make ~count:2000 ~name:"parse total on arbitrary bytes"
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun src ->
      match Q.Parser.parse_program src with Ok _ -> true | Error _ -> true)

let test_deep_nesting_is_error () =
  let src = String.make 5000 '(' ^ "r1" ^ String.make 5000 ')' in
  match Q.Parser.parse_program src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected depth-cap error"

(* the fuzzer's generator as a qcheck generator *)
let gen_ast_expr =
  QCheck.make
    ~print:(fun e -> Q.Pretty.expr e)
    (fun st ->
      let g = { Q.Fuzz.rng = st; vars = 0 } in
      let arity = 1 + Random.State.int st 2 in
      let depth = 2 + Random.State.int st 2 in
      Q.Fuzz.gen_expr g ~arity ~depth ~wb:4)

let test_roundtrip_qcheck =
  QCheck.Test.make ~count:500 ~name:"parse (pretty_print e) = e" gen_ast_expr
    (fun e ->
      match Q.Parser.parse_expr_string (Q.Pretty.expr e) with
      | Ok e' -> Q.Ast.equal_expr e e'
      | Error err ->
          QCheck.Test.fail_reportf "re-parse failed: %s on %s"
            (Q.Parser.error_to_string err) (Q.Pretty.expr e))

(* ------------------------------------------------------------------ *)
(* semantics: compiled pipeline vs naive oracle *)

let test_set_ops () =
  let o =
    differential
      "a = [<1>, <2>, <3>]; b = [<2>, <4>]; (a - b) + (b - a) & (a + b)"
  in
  check "symdiff rows" true (o.Q.Exec.rows = [ [ "1" ]; [ "3" ]; [ "4" ] ])

let test_compose () =
  let o =
    differential "r = [<1, 10>, <2, 20>]; s = [<10, 100>, <20, 200>]; r o s"
  in
  check "compose rows" true
    (o.Q.Exec.rows = [ [ "1"; "100" ]; [ "2"; "200" ] ])

let test_comprehension_join () =
  let o =
    differential
      "e = [<\"a\", \"b\">, <\"b\", \"c\">, <\"c\", \"d\">]; [ <x, z> | <x, y> \
       <- e, <y2, z> <- e, y == y2 ]"
  in
  check "two-step paths" true (o.Q.Exec.rows = [ [ "a"; "c" ]; [ "b"; "d" ] ])

let test_comprehension_guards_consts () =
  let o =
    differential
      "r = [<0, \"a\">, <1, \"b\">, <1, \"c\">]; [ <\"hit\", y> | <1, y> <- r, \
       y != \"c\" ]"
  in
  check "const pattern + guard + const head" true
    (o.Q.Exec.rows = [ [ "hit"; "b" ] ])

let test_xfilter_xeq () =
  let o = differential "a = [<1>, <2>]; b = [<1>]; xfilter(a, b)" in
  check "xfilter true" true (o.Q.Exec.rows = [ [ "true" ] ]);
  let o = differential "a = [<1>, <2>]; b = [<2>, <1>, <1>]; xeq(a, b)" in
  check "xeq true" true (o.Q.Exec.rows = [ [ "true" ] ]);
  let o = differential "a = [<1>, <2>]; b = [<1>]; xeq(a, b)" in
  check "xeq false" true (o.Q.Exec.rows = []);
  let o = differential "a = []; b = [<1>]; xfilter(a, b)" in
  check "xfilter empty lhs" true (o.Q.Exec.rows = [])

let test_empty_literal_is_unary () =
  let o = differential "[] + [<9>]" in
  check_int "arity 1" 1 o.Q.Exec.arity;
  check "rows" true (o.Q.Exec.rows = [ [ "9" ] ])

let test_type_errors () =
  let env = [ ("r1", (1, [ [ "1" ] ])) ] in
  let expect_err src =
    let e = parse_expr src in
    match Q.Exec.run ~env e with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected type error for %S" src
  in
  expect_err "r1 + [<1, 2>]";
  expect_err "r1 o r1";
  expect_err "nosuch";
  expect_err "xfilter(r1, [<1, 2>])";
  expect_err "[ <x, x> | <x> <- r1 ]";
  expect_err "[ <y> | <x> <- r1 ]";
  expect_err "[ <1> | 1 == 1 ]"

let test_audits_pass_on_devices () =
  List.iter
    (fun (name, device) ->
      let o =
        differential ~device
          "e = [<\"a\", \"b\">, <\"b\", \"c\">, <\"c\", \"d\">, <\"d\", \
           \"e\">]; xeq([ <y> | <x, y> <- e o e ], [ <\"c\">, <\"d\">, \
           <\"e\"> ]) + ([ <z> | <z, w> <- e, w < \"c\" ] - [<\"a\">])"
      in
      check (name ^ ": audit ok") true o.Q.Exec.audit_ok;
      check (name ^ ": nodes audited") true (List.length o.Q.Exec.nodes > 5))
    (device_specs ())

(* scan counts are device-blind (the E18 property, inherited here) *)
let test_scans_backend_blind () =
  let outcomes =
    List.map
      (fun (_, device) ->
        let o =
          differential ~device
            "r = [<1, 10>, <2, 20>, <3, 10>]; s = [<10, 9>, <20, 8>]; r o s"
        in
        (o.Q.Exec.scans, o.Q.Exec.rows))
      (device_specs ())
  in
  match outcomes with
  | (s0, r0) :: rest ->
      List.iter
        (fun (s, r) ->
          check_int "same scans" s0 s;
          check "same rows" true (r = r0))
        rest
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* the differential fuzzer *)

let campaign_fingerprint ?pool ?device ~seed ~iters () =
  let c = Q.Fuzz.run_campaign ?pool ?device ~seed ~iters () in
  if c.Q.Fuzz.mismatches > 0 || c.Q.Fuzz.audit_failures > 0 then
    print_string (Q.Fuzz.report c);
  check_int "no mismatches" 0 c.Q.Fuzz.mismatches;
  check_int "no audit failures" 0 c.Q.Fuzz.audit_failures;
  c.Q.Fuzz.fingerprint

let test_campaign_deterministic_workers () =
  let base = campaign_fingerprint ~seed:42 ~iters:25 () in
  List.iter
    (fun domains ->
      let pool = Parallel.Pool.create ~domains () in
      let fp = campaign_fingerprint ~pool ~seed:42 ~iters:25 () in
      Alcotest.(check int64)
        (Printf.sprintf "-j %d fingerprint" domains)
        base fp)
    [ 1; 2; 4 ]

let test_campaign_deterministic_devices () =
  let base = campaign_fingerprint ~seed:43 ~iters:15 () in
  List.iter
    (fun (name, device) ->
      let fp = campaign_fingerprint ~device ~seed:43 ~iters:15 () in
      Alcotest.(check int64) (name ^ " fingerprint") base fp)
    (device_specs ())

let test_injected_bug_caught () =
  (* the hidden compiler fault: composition operands swapped. The
     differential check must find a witness within 200 iterations. *)
  Q.Compile.swap_compose := true;
  Fun.protect
    ~finally:(fun () -> Q.Compile.swap_compose := false)
    (fun () ->
      let caught = ref None in
      let index = ref 0 in
      while !caught = None && !index < 200 do
        let r = Q.Fuzz.run_case ~seed:7 ~index:!index () in
        if not r.Q.Fuzz.c_ok then caught := Some (!index, r);
        incr index
      done;
      match !caught with
      | None -> Alcotest.fail "swapped-compose bug survived 200 iterations"
      | Some (_, r) -> (
          match r.Q.Fuzz.c_discrepancy with
          | None -> Alcotest.fail "mismatch without discrepancy record"
          | Some d ->
              (* the shrunk program must itself be a replayable witness *)
              check "shrunk program parses" true
                (match Q.Parser.parse_program d.Q.Fuzz.d_program with
                | Ok _ -> true
                | Error _ -> false)))

let test_fuzz_case_deterministic () =
  let a = Q.Fuzz.run_case ~seed:5 ~index:3 () in
  let b = Q.Fuzz.run_case ~seed:5 ~index:3 () in
  Alcotest.(check int64)
    "case fingerprint stable" a.Q.Fuzz.c_fingerprint b.Q.Fuzz.c_fingerprint;
  check "distinct indices differ" true
    (a.Q.Fuzz.c_fingerprint
    <> (Q.Fuzz.run_case ~seed:5 ~index:4 ()).Q.Fuzz.c_fingerprint)

(* ------------------------------------------------------------------ *)
(* regression corpus: shrunk counterexamples found during development.
   Each entry replays a program that once exposed a planner bug; the
   compiled pipeline must agree with the oracle forever after. *)

let corpus =
  [
    (* swapped-compose family: shrunk by the fuzzer from injected-bug
       campaigns (stlb query --fuzz --inject-swap-compose, seeds 7, 13,
       21, 34). Compose is the one operator whose operand order the
       lowering must get right end-to-end. *)
    "r3 = [<10, \"a\">]; r3 o [<0, 10>]";
    "r3 = [<7, 2>]; [<0, 7>] o r3";
    "r3 = [<2, \"00\">]; r3 o [<\"00\", 0>, <\"00\", \"b\">]";
    "r4 = [<0, \"a\">, <\"a\", \"ab\">]; r4 o r4 o [<10, 1>, <\"ab\", \"01\">]";
    "r4 = [<\"ab\", 10>]; ([<\"a\", 11>] + [<11, \"ab\">, <\"ba\", \"01\">]) o (r4 + [<1, 10>])";
    "r3 = [<\"b\", 7>]; r3 o ([<0, \"00\">, <\"01\", 0>, <\"ba\", \"01\">] + [<7, \"01\">, <\"ba\", \"b\">] - ([<11, 1>] & r3))";
    "r3 = [<\"ba\", \"a\">]; [<\"a\", \"01\">, <\"ab\", \"b\">] o (r3 & [<1, 11>, <11, \"ab\">, <\"ba\", \"a\">])";
    "r1 = [<\"ab\">]; [ <v2, 7> | <v2> <- [<10>, <7>] ] o [ <v1, 10> | <v1> <- r1, <\"ab\"> <- r1 ]";
    "r1 = [<2>]; [<10, 10>] o [ <10, v1> | <_, _> <- [ <7, 1> | <_> <- r1 ], <v1> <- r1 - [<\"01\">, <\"b\">], v1 < 7 ]";
    "r1 = [<\"ba\">]; r4 = [<\"b\", 7>]; [<\"00\", \"a\">, <2, 11>, <\"ba\", 0>] o [ <10, v3> | <v2> <- [ <v1> | <v1, _> <- r4 ], <v3> <- r1 + [] ]";
    "r3 = [<\"ba\", 7>]; (r3 - [<1, \"00\">, <1, 10>, <11, \"ab\">]) o [ <\"00\", \"ba\"> | <7> <- [<7>, <\"ab\">, <\"ba\">] ]";
    (* empty-literal family: [] is the empty *unary* relation; during
       development the generator emitted it in arity-2 positions, and
       these pins keep its typing and set-op semantics honest *)
    "[ <x> | <x> <- [] ]";
    "r1 = [<\"a\">]; (r1 + []) - ([] & r1)";
    "xfilter([] + [<\"q\">], [])";
    (* document-builtin verdicts as relational values feeding compose *)
    "a = [<\"p\">, <\"q\">]; b = [<\"p\">]; [ <x, 1> | <x> <- xfilter(a, b) ] o [<1, \"yes\">]";
    "a = [<\"p\">]; [ <x, 0> | <x> <- xeq(a, a + a) ] o [<0, \"true\">]";
  ]

let test_corpus_replay () =
  List.iter (fun src -> ignore (differential src)) corpus;
  (* plus: the swapped-compose witness family stays mismatching under
     the bug flag, proving the corpus would catch a regression *)
  Q.Compile.swap_compose := true;
  Fun.protect
    ~finally:(fun () -> Q.Compile.swap_compose := false)
    (fun () ->
      let env = [ ("r", (2, [ [ "1"; "2" ] ])); ("s", (2, [ [ "2"; "3" ] ])) ] in
      let e = parse_expr "r o s" in
      let _, want = Q.Naive.eval env e in
      match Q.Exec.run ~env e with
      | Error m -> Alcotest.failf "exec error: %s" m
      | Ok o -> check "bug still detectable" true (o.Q.Exec.rows <> want))

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "query"
    [
      ( "parse",
        [
          Alcotest.test_case "operator shapes" `Quick test_parse_shapes;
          Alcotest.test_case "comprehension" `Quick test_parse_comprehension;
          Alcotest.test_case "errors located" `Quick test_parse_errors_located;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting_is_error;
        ] );
      qsuite "laws" [ test_roundtrip_qcheck; test_parse_never_raises_qcheck ];
      ( "semantics",
        [
          Alcotest.test_case "set ops" `Quick test_set_ops;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "comprehension join" `Quick test_comprehension_join;
          Alcotest.test_case "consts and guards" `Quick
            test_comprehension_guards_consts;
          Alcotest.test_case "xfilter/xeq" `Quick test_xfilter_xeq;
          Alcotest.test_case "empty literal" `Quick test_empty_literal_is_unary;
          Alcotest.test_case "type errors" `Quick test_type_errors;
          Alcotest.test_case "audits on devices" `Quick
            test_audits_pass_on_devices;
          Alcotest.test_case "backend-blind scans" `Quick
            test_scans_backend_blind;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "campaign -j 1/2/4" `Quick
            test_campaign_deterministic_workers;
          Alcotest.test_case "campaign devices" `Quick
            test_campaign_deterministic_devices;
          Alcotest.test_case "injected bug caught" `Quick
            test_injected_bug_caught;
          Alcotest.test_case "case determinism" `Quick
            test_fuzz_case_deterministic;
          Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
        ] );
    ]
