(* Tests for the serve layer: the stlb/1 frame codec (qcheck round-trip
   and the PROTOCOL.md conformance vectors — the document's hex
   examples are executed against the real codec, so the spec cannot
   drift), the per-request seed rule, verdict determinism across server
   restarts / worker counts / batching, backpressure (bounded queue and
   batch/frame size limits shed loudly), and a malformed-frame fuzz
   pass that the server must survive. *)

module F = Serve.Frame
module D = Problems.Decide

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* frame codec: qcheck round-trip *)

let gen_id =
  (* small ids plus the full 62-bit range *)
  QCheck.Gen.(oneof [ int_bound 1000; map (fun i -> i land max_int) int ])

let gen_instance = QCheck.Gen.(string_size (int_range 0 40))

let gen_decide =
  QCheck.Gen.(
    map3
      (fun problem algorithm instance -> { F.problem; algorithm; instance })
      (oneofl
         [
           F.Core D.Set_equality; F.Core D.Multiset_equality;
           F.Core D.Check_sort; F.Relalg_symdiff; F.Xpath_filter;
         ])
      (oneofl [ F.Reference; F.Sort; F.Fingerprint; F.Nst ])
      gen_instance)

let gen_verdict =
  QCheck.Gen.(
    map
      (fun (verdict, audited, scans, internal, tapes) ->
        { F.verdict; audited; scans; internal; tapes })
      (tup5 bool bool (int_bound 0xFFFFFF) (int_bound 0xFFFFFF) (int_bound 64)))

let gen_error_code =
  QCheck.Gen.oneofl
    [
      F.Bad_version; F.Bad_type; F.Malformed; F.Too_large; F.Overloaded;
      F.Budget; F.Audit_failed; F.Internal;
    ]

let gen_payload =
  QCheck.Gen.(
    oneof
      [
        return (F.Request F.Ping);
        map (fun d -> F.Request (F.Decide d)) gen_decide;
        map
          (fun ds -> F.Request (F.Batch ds))
          (list_size (int_range 0 5) gen_decide);
        return (F.Request F.Stats);
        return (F.Request F.Health);
        return (F.Request F.Shutdown);
        return (F.Response F.Pong);
        map (fun v -> F.Response (F.Verdict v)) gen_verdict;
        map
          (fun vs -> F.Response (F.Batch_verdict vs))
          (list_size (int_range 0 5) gen_verdict);
        map (fun s -> F.Response (F.Stats_json s)) (string_size (int_range 0 60));
        map (fun s -> F.Response (F.Health_json s)) (string_size (int_range 0 60));
        return (F.Response F.Bye);
        map2
          (fun code message -> F.Response (F.Error { code; message }))
          gen_error_code
          (string_size (int_range 0 40));
      ])

let arb_msg =
  QCheck.make ~print:F.describe
    QCheck.Gen.(map2 (fun id payload -> { F.id; payload }) gen_id gen_payload)

let prop_frame_round_trip =
  QCheck.Test.make ~name:"frame encode/decode round-trip" ~count:1000 arb_msg
    (fun m ->
      let wire = F.encode m in
      match F.decode wire ~pos:0 with
      | F.Complete (m', consumed) -> m' = m && consumed = String.length wire
      | F.Incomplete | F.Broken _ -> false)

let prop_frame_streaming =
  (* two frames back to back in one buffer, decoded from moving [pos];
     every strict prefix of a frame is Incomplete, never Broken *)
  QCheck.Test.make ~name:"framing survives concatenation and prefixes"
    ~count:300
    (QCheck.pair arb_msg arb_msg)
    (fun (a, b) ->
      let wa = F.encode a and wb = F.encode b in
      let buf = wa ^ wb in
      let first_ok =
        match F.decode buf ~pos:0 with
        | F.Complete (m, c) -> m = a && c = String.length wa
        | _ -> false
      in
      let second_ok =
        match F.decode buf ~pos:(String.length wa) with
        | F.Complete (m, c) -> m = b && c = String.length wb
        | _ -> false
      in
      let prefixes_ok =
        let all = ref true in
        for cut = 0 to String.length wa - 1 do
          match F.decode (String.sub wa 0 cut) ~pos:0 with
          | F.Incomplete -> ()
          | _ -> all := false
        done;
        !all
      in
      first_ok && second_ok && prefixes_ok)

(* ------------------------------------------------------------------ *)
(* PROTOCOL.md conformance: execute the document's worked examples *)

let strip_prefix ~prefix s =
  let s = String.trim s in
  if String.length s >= String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then Some (String.trim (String.sub s (String.length prefix)
                            (String.length s - String.length prefix)))
  else None

let bytes_of_hex hex =
  let digits =
    String.to_seq hex
    |> Seq.filter (fun c -> c <> ' ')
    |> List.of_seq
  in
  if List.length digits mod 2 <> 0 then failwith "odd hex digit count";
  let b = Buffer.create (List.length digits / 2) in
  let rec go = function
    | [] -> ()
    | hi :: lo :: rest ->
        let v c =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> failwith (Printf.sprintf "bad hex digit %c" c)
        in
        Buffer.add_char b (Char.chr ((v hi lsl 4) lor v lo));
        go rest
    | [ _ ] -> assert false
  in
  go digits;
  Buffer.contents b

let protocol_examples () =
  let ic = open_in "../PROTOCOL.md" in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let rec scan acc = function
    | [] -> List.rev acc
    | line :: rest -> (
        match strip_prefix ~prefix:"frame-hex:" line with
        | None -> scan acc rest
        | Some hex -> (
            match rest with
            | expect :: rest' -> (
                match
                  ( strip_prefix ~prefix:"parses-as:" expect,
                    strip_prefix ~prefix:"breaks-as:" expect )
                with
                | Some p, _ -> scan ((hex, `Parses p) :: acc) rest'
                | _, Some b -> scan ((hex, `Breaks b) :: acc) rest'
                | None, None ->
                    failwith
                      ("frame-hex: line not followed by parses-as:/breaks-as:: "
                     ^ hex))
            | [] -> failwith "frame-hex: at end of document"))
  in
  scan [] (List.rev !lines)

let test_protocol_conformance () =
  let examples = protocol_examples () in
  check "PROTOCOL.md carries worked examples" true (List.length examples >= 8);
  List.iter
    (fun (hex, expect) ->
      let wire = bytes_of_hex hex in
      match (F.decode wire ~pos:0, expect) with
      | F.Complete (msg, consumed), `Parses p ->
          check_string ("describe: " ^ p) p (F.describe msg);
          check_int "consumed the whole frame" (String.length wire) consumed;
          (* re-encoding the parsed message must reproduce the
             document's bytes exactly — the codec has one canonical
             encoding and the doc records it *)
          check "re-encode is byte-identical" true (F.encode msg = wire)
      | F.Broken { code; message; _ }, `Breaks b ->
          check_string ("breaks: " ^ b) b (F.error_code_name code ^ " " ^ message)
      | F.Complete (msg, _), `Breaks b ->
          Alcotest.failf "expected broken %S, decoded %s" b (F.describe msg)
      | F.Broken { code; message; _ }, `Parses p ->
          Alcotest.failf "expected %S, broke with %s %s" p
            (F.error_code_name code) message
      | F.Incomplete, _ -> Alcotest.failf "example truncated: %s" hex)
    examples

let test_seed_rule () =
  (* PROTOCOL.md §5: the per-request state IS the pool's chunk
     derivation with the request id as index *)
  List.iter
    (fun (seed, id) ->
      let a = Parallel.Rng.request_state ~server_seed:seed ~request_id:id in
      let b = Parallel.Rng.state ~seed ~index:id in
      for _ = 1 to 16 do
        check_int "same draw" (Random.State.full_int a 1_000_000)
          (Random.State.full_int b 1_000_000)
      done)
    [ (42, 0); (42, 1); (42, 12345); (0x5EED, 7); (1, F.max_id) ]

(* ------------------------------------------------------------------ *)
(* a live server, in-process *)

let sock_ctr = ref 0

let fresh_socket () =
  incr sock_ctr;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "stlb-ts-%d-%d.sock" (Unix.getpid ()) !sock_ctr)

let with_server ?(seed = 42) ?(domains = 1) ?(queue_bound = 128)
    ?(max_batch = 64) ?(max_frame = F.default_max_frame) f =
  let socket = fresh_socket () in
  let cfg =
    {
      (Serve.Server.default ~socket) with
      Serve.Server.seed;
      domains;
      queue_bound;
      max_batch;
      max_frame;
    }
  in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Serve.Server.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Serve.Client.connect ~retries:3 socket in
         Serve.Client.shutdown c ~id:0;
         Serve.Client.close c
       with _ -> ());
      Domain.join srv)
    (fun () -> f socket)

let workload_ids = [ 0; 1; 2; 3; 4; 5; 6; 7; 11; 19 ]

let collect socket =
  let c = Serve.Client.connect socket in
  let rs =
    List.map
      (fun id ->
        let d = Serve.Loadgen.mixed_item ~seed:7 ~m:4 ~n:6 ~id in
        ( id,
          Serve.Client.decide c ~id ~problem:d.F.problem
            ~algorithm:d.F.algorithm ~instance:d.F.instance ))
      workload_ids
  in
  Serve.Client.close c;
  rs

let test_determinism_across_restarts_and_workers () =
  let runs =
    List.map
      (fun domains -> with_server ~seed:42 ~domains collect)
      [ 1; 3; 1 (* third run = a restart with the same seed *) ]
  in
  match runs with
  | [ a; b; c ] ->
      check "restart + worker-count parity" true (a = b && b = c);
      (* every sort/fingerprint verdict passed its theorem-budget audit
         server-side; NST may be an unaudited no-witness rejection *)
      List.iter
        (fun (id, r) ->
          match r with
          | Ok v ->
              let d = Serve.Loadgen.mixed_item ~seed:7 ~m:4 ~n:6 ~id in
              if d.F.algorithm = F.Sort || d.F.algorithm = F.Fingerprint then
                check "audited" true v.F.audited
          | Error (code, m) ->
              Alcotest.failf "request %d errored: %s %s" id
                (F.error_code_name code) m)
        a
  | _ -> assert false

let test_batching_equivalence () =
  with_server ~seed:42 @@ fun socket ->
  let base = 100 in
  let items =
    List.map
      (fun i -> Serve.Loadgen.mixed_item ~seed:7 ~m:4 ~n:6 ~id:(base + i))
      [ 0; 1; 2; 3; 4 ]
  in
  let c = Serve.Client.connect socket in
  let batched =
    match Serve.Client.batch c ~id:base items with
    | Ok vs -> vs
    | Error (code, m) ->
        Alcotest.failf "batch errored: %s %s" (F.error_code_name code) m
  in
  let singles =
    List.mapi
      (fun i (d : F.decide_body) ->
        match
          Serve.Client.decide c ~id:(base + i) ~problem:d.F.problem
            ~algorithm:d.F.algorithm ~instance:d.F.instance
        with
        | Ok v -> v
        | Error (code, m) ->
            Alcotest.failf "singleton %d errored: %s %s" (base + i)
              (F.error_code_name code) m)
      items
  in
  Serve.Client.close c;
  check "batch item i = singleton with id base+i" true (batched = singles)

(* ------------------------------------------------------------------ *)
(* the query-layer wire problems (0x04 relalg-symdiff, 0x05 xpath-filter) *)

let test_query_problems_on_the_wire () =
  with_server ~seed:42 @@ fun socket ->
  let c = Serve.Client.connect socket in
  let st = Random.State.make [| 0x94 |] in
  let cases =
    (* (problem, instance, expected verdict): relalg-symdiff is YES iff
       the halves are equal as sets; xpath-filter is YES iff some set1
       string is missing from set2 — opposite polarity on the same
       yes/no generator pairs *)
    let yes = Problems.Generators.yes_instance st D.Set_equality ~m:4 ~n:6 in
    let no = Problems.Generators.no_instance st D.Set_equality ~m:4 ~n:6 in
    [
      (F.Relalg_symdiff, yes, true);
      (F.Relalg_symdiff, no, false);
      (F.Xpath_filter, yes, false);
      (F.Xpath_filter, no, true);
    ]
  in
  List.iteri
    (fun i (problem, inst, expected) ->
      let instance = Problems.Instance.encode inst in
      (* reference and sort agree, and the sort run is audited against
         its Theorem 11(b)/Theorem 13 budget server-side *)
      let reference =
        match
          Serve.Client.decide c ~id:(10 + i) ~problem ~algorithm:F.Reference
            ~instance
        with
        | Ok v -> v
        | Error (code, m) ->
            Alcotest.failf "reference errored: %s %s" (F.error_code_name code) m
      in
      let sort =
        match
          Serve.Client.decide c ~id:(20 + i) ~problem ~algorithm:F.Sort
            ~instance
        with
        | Ok v -> v
        | Error (code, m) ->
            Alcotest.failf "sort errored: %s %s" (F.error_code_name code) m
      in
      check "expected verdict" true (reference.F.verdict = expected);
      check "reference/sort parity" true (sort.F.verdict = expected);
      check "reference unaudited" true (not reference.F.audited);
      check "sort audited" true sort.F.audited;
      check "sort did tape work" true (sort.F.scans > 0))
    cases;
  (* the query problems reject the multiset algorithms loudly *)
  let inst =
    Problems.Instance.encode
      (Problems.Generators.yes_instance st D.Set_equality ~m:3 ~n:4)
  in
  List.iter
    (fun (problem, algorithm) ->
      match Serve.Client.decide c ~id:77 ~problem ~algorithm ~instance:inst with
      | Error (F.Malformed, _) -> ()
      | Error (code, m) ->
          Alcotest.failf "expected MALFORMED, got %s %s"
            (F.error_code_name code) m
      | Ok _ -> Alcotest.fail "fingerprint/nst accepted a query problem")
    [
      (F.Relalg_symdiff, F.Fingerprint); (F.Relalg_symdiff, F.Nst);
      (F.Xpath_filter, F.Fingerprint); (F.Xpath_filter, F.Nst);
    ];
  Serve.Client.close c

(* ------------------------------------------------------------------ *)
(* backpressure *)

let test_queue_bound_sheds_loudly () =
  with_server ~queue_bound:2 @@ fun socket ->
  let c = Serve.Client.connect socket in
  let burst = 50 in
  let wire = Buffer.create 1024 in
  for id = 1 to burst do
    Buffer.add_string wire (F.encode { F.id; payload = F.Request F.Ping })
  done;
  (* one write: the server's next read ingests the whole burst before
     the queue drains, so everything past the bound must be shed *)
  Serve.Client.send_raw c (Buffer.contents wire);
  let pongs = ref 0 and shed = ref 0 in
  for _ = 1 to burst do
    match (Serve.Client.read_response c).F.payload with
    | F.Response F.Pong -> incr pongs
    | F.Response (F.Error { code = F.Overloaded; _ }) -> incr shed
    | p -> Alcotest.failf "unexpected response %s" (F.describe { id = 0; payload = p })
  done;
  Serve.Client.close c;
  check_int "every frame answered" burst (!pongs + !shed);
  check "some pings served" true (!pongs >= 2);
  check "overload shed loudly" true (!shed >= 1)

let test_oversized_batch_rejected () =
  with_server ~max_batch:4 @@ fun socket ->
  let c = Serve.Client.connect socket in
  let items =
    List.init 6 (fun i -> Serve.Loadgen.mixed_item ~seed:7 ~m:4 ~n:6 ~id:i)
  in
  (match Serve.Client.batch c ~id:9 items with
  | Error (F.Overloaded, _) -> ()
  | Error (code, m) ->
      Alcotest.failf "expected OVERLOADED, got %s %s" (F.error_code_name code) m
  | Ok _ -> Alcotest.fail "oversized batch accepted");
  (* the connection survives: the batch was shed, not the socket *)
  check "connection still serves" true (Serve.Client.ping c ~id:10);
  Serve.Client.close c

let test_oversized_frame_closes_connection () =
  with_server ~max_frame:256 @@ fun socket ->
  let c = Serve.Client.connect socket in
  let big =
    {
      F.id = 3;
      payload =
        F.Request
          (F.Decide
             {
               F.problem = F.Core D.Multiset_equality;
               algorithm = F.Reference;
               instance = String.make 1000 '0';
             });
    }
  in
  Serve.Client.send_raw c (F.encode big);
  (match (Serve.Client.read_response c).F.payload with
  | F.Response (F.Error { code = F.Too_large; _ }) -> ()
  | p -> Alcotest.failf "expected TOO_LARGE, got %s"
           (F.describe { id = 0; payload = p }));
  Serve.Client.close c;
  (* framing was unrecoverable, so that connection is gone — but the
     server is not: a fresh connection works *)
  let c2 = Serve.Client.connect socket in
  check "server survived" true (Serve.Client.ping c2 ~id:4);
  Serve.Client.close c2

(* ------------------------------------------------------------------ *)
(* malformed-frame fuzz: the server never crashes *)

let test_malformed_fuzz_never_kills_server () =
  with_server @@ fun socket ->
  let st = Random.State.make [| 0xF422 |] in
  for _ = 1 to 60 do
    let c = Serve.Client.connect socket in
    let len = 1 + Random.State.int st 64 in
    let garbage =
      String.init len (fun _ -> Char.chr (Random.State.int st 256))
    in
    Serve.Client.send_raw c garbage;
    Serve.Client.close c
  done;
  (* structured near-misses: valid header shapes with broken payloads *)
  let near_misses =
    [
      (* announced payload shorter than the 10-byte header *)
      "\x00\x00\x00\x04\x01\x01\x00\x00";
      (* wrong version byte *)
      "\x00\x00\x00\x0a\x02\x01\x00\x00\x00\x00\x00\x00\x00\x07";
      (* unknown type byte *)
      "\x00\x00\x00\x0a\x01\x7f\x00\x00\x00\x00\x00\x00\x00\x07";
      (* PING with a non-empty body *)
      "\x00\x00\x00\x0b\x01\x01\x00\x00\x00\x00\x00\x00\x00\x07\x00";
      (* id with bit 63 set *)
      "\x00\x00\x00\x0a\x01\x01\x80\x00\x00\x00\x00\x00\x00\x07";
    ]
  in
  List.iter
    (fun wire ->
      let c = Serve.Client.connect socket in
      Serve.Client.send_raw c wire;
      (* each of these is answered with an ERROR frame, not silence *)
      (match (Serve.Client.read_response c).F.payload with
      | F.Response (F.Error _) -> ()
      | p ->
          Alcotest.failf "expected an error response, got %s"
            (F.describe { id = 0; payload = p }));
      Serve.Client.close c)
    near_misses;
  let c = Serve.Client.connect socket in
  check "server alive after fuzz" true (Serve.Client.ping c ~id:99);
  Serve.Client.close c

(* ------------------------------------------------------------------ *)
(* stats / health *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_stats_and_health () =
  with_server ~seed:13 @@ fun socket ->
  let c = Serve.Client.connect socket in
  ignore (Serve.Client.ping c ~id:1);
  let d = Serve.Loadgen.mixed_item ~seed:7 ~m:4 ~n:6 ~id:2 in
  ignore
    (Serve.Client.decide c ~id:2 ~problem:d.F.problem ~algorithm:d.F.algorithm
       ~instance:d.F.instance);
  let s = Serve.Client.stats c ~id:3 in
  List.iter
    (fun needle -> check ("stats has " ^ needle) true (contains ~needle s))
    [ "\"pings\":1"; "\"decides\":1"; "\"counters\":{" ];
  let h = Serve.Client.health c ~id:4 in
  List.iter
    (fun needle -> check ("health has " ^ needle) true (contains ~needle h))
    [ "\"status\":\"ok\""; "\"seed\":13"; "\"device\":\"mem\"" ];
  Serve.Client.close c

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "frame",
        [
          QCheck_alcotest.to_alcotest prop_frame_round_trip;
          QCheck_alcotest.to_alcotest prop_frame_streaming;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "PROTOCOL.md hex examples execute" `Quick
            test_protocol_conformance;
          Alcotest.test_case "seed rule = pool chunk derivation" `Quick
            test_seed_rule;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "restarts and worker counts" `Slow
            test_determinism_across_restarts_and_workers;
          Alcotest.test_case "batching equivalence" `Quick
            test_batching_equivalence;
          Alcotest.test_case "query problems on the wire" `Quick
            test_query_problems_on_the_wire;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "queue bound sheds loudly" `Quick
            test_queue_bound_sheds_loudly;
          Alcotest.test_case "oversized batch rejected" `Quick
            test_oversized_batch_rejected;
          Alcotest.test_case "oversized frame closes connection" `Quick
            test_oversized_frame_closes_connection;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "malformed frames never kill the server" `Quick
            test_malformed_fuzz_never_kills_server;
        ] );
      ( "observability",
        [
          Alcotest.test_case "stats and health JSON" `Quick
            test_stats_and_health;
        ] );
    ]
