# loaded by repl_session.in via :load - statements only
q1 = r + [<4, 400>]
