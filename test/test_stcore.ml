(* Tests for the core lower-bound machinery: the Lemma 21 adversary,
   the composition lemma checker (Lemma 34), the Lemma 21/22 parameter
   arithmetic, and the class landscape. *)

module G = Problems.Generators
module Machines = Listmachine.Machines
module Nlm = Listmachine.Nlm
module Adv = Stcore.Adversary
module Comp = Stcore.Composition
module Params = Stcore.Params

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = G.Checkphi.default_space ~m:8 ~n:12

(* ------------------------------------------------------------------ *)
(* Adversary *)

let test_adversary_fools_truncated () =
  let st = Random.State.make [| 30 |] in
  List.iter
    (fun chains ->
      let machine = Machines.staircase_checkphi ~space ~chains ~optimistic:true in
      let outcome = Adv.attack st ~space ~machine () in
      match outcome with
      | Adv.Fooled { input; _ } ->
          check "verifies" true (Adv.verify_fooled ~space ~machine outcome);
          check "fooling input is a no-instance" false (G.Checkphi.is_yes space input);
          check "fooling input in the space" true (G.Checkphi.member space input)
      | Adv.Not_fooled { reason; _ } ->
          Alcotest.fail (Printf.sprintf "chains=%d not fooled: %s" chains reason)
      | Adv.Contract_violated _ ->
          Alcotest.fail (Printf.sprintf "chains=%d contract violated" chains))
    [ 0; 1; 2 ]

let test_adversary_respects_complete_machine () =
  let st = Random.State.make [| 31 |] in
  let needed = Machines.chains_needed ~space in
  let machine = Machines.staircase_checkphi ~space ~chains:needed ~optimistic:false in
  match Adv.attack st ~space ~machine () with
  | Adv.Not_fooled { reason; _ } ->
      check "full coverage is the reason" true
        (reason = "every pair (i, m+phi(i)) is compared in the skeleton")
  | Adv.Fooled _ -> Alcotest.fail "fooled a complete machine"
  | Adv.Contract_violated _ -> Alcotest.fail "complete machine violates contract"

let test_adversary_flags_contract_violation () =
  let st = Random.State.make [| 32 |] in
  (* the pessimistic truncated machine rejects every yes-instance *)
  let machine = Machines.staircase_checkphi ~space ~chains:1 ~optimistic:false in
  (match Adv.attack st ~space ~machine () with
  | Adv.Contract_violated { yes_acceptance } ->
      check "zero acceptance" true (yes_acceptance = 0.0)
  | Adv.Fooled _ | Adv.Not_fooled _ -> Alcotest.fail "should be a contract violation");
  (* blind-reject likewise *)
  let blind = Machines.blind ~input_length:16 ~accept:false in
  match Adv.attack st ~space ~machine:blind () with
  | Adv.Contract_violated _ -> ()
  | Adv.Fooled _ | Adv.Not_fooled _ -> Alcotest.fail "blind-reject violates contract"

let test_adversary_fools_blind_accept () =
  let st = Random.State.make [| 33 |] in
  let machine = Machines.blind ~input_length:16 ~accept:true in
  match Adv.attack st ~space ~machine () with
  | Adv.Fooled _ -> ()
  | Adv.Not_fooled _ | Adv.Contract_violated _ ->
      Alcotest.fail "blind-accept must be fooled"

(* an injective rendering of everything an outcome determines - the
   worker-parity test compares these strings *)
let outcome_fingerprint outcome =
  let inst_str inst =
    String.concat "#"
      (Array.to_list
         (Array.map Util.Bitstring.to_string
            (Array.append (Problems.Instance.xs inst) (Problems.Instance.ys inst))))
  in
  match outcome with
  | Adv.Fooled { input; i0; skeleton_classes; yes_acceptance; choice_seed } ->
      Printf.sprintf "fooled:%s:%d:%d:%.6f:%d" (inst_str input) i0
        skeleton_classes yes_acceptance choice_seed
  | Adv.Not_fooled { reason; yes_acceptance; skeleton_classes } ->
      Printf.sprintf "not_fooled:%s:%.6f:%d" reason yes_acceptance
        skeleton_classes
  | Adv.Contract_violated { yes_acceptance } ->
      Printf.sprintf "contract_violated:%.6f" yes_acceptance

let test_attack_worker_parity () =
  (* the attack must be a function of the root seed alone: bit-identical
     for every pool size, and independent of the Random.State it is
     handed when [~seed] is given *)
  let machine = Machines.staircase_checkphi ~space ~chains:2 ~optimistic:true in
  let fp ~state_seed d =
    let pool = Parallel.Pool.create ~domains:d () in
    let st = Random.State.make [| state_seed |] in
    outcome_fingerprint (Adv.attack ~pool ~seed:4242 st ~space ~machine ())
  in
  let reference = fp ~state_seed:1 1 in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "outcome at -j %d" d)
        reference
        (fp ~state_seed:(100 + d) d))
    [ 1; 2; 4 ];
  check "fooled at 2 chains" true
    (String.length reference > 7 && String.sub reference 0 7 = "fooled:")

(* ------------------------------------------------------------------ *)
(* Census scaling levers: canonical-form reduction and sharding *)

let prop_canonicalize_idempotent =
  QCheck.Test.make ~name:"canonicalization is idempotent and key-preserving"
    ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed + 3 |] in
      let inst =
        if seed mod 2 = 0 then G.Checkphi.yes st space else G.Checkphi.no st space
      in
      let c = Adv.canonicalize inst in
      Adv.canonical_key c = Adv.canonical_key inst
      && Problems.Instance.encode (Adv.canonicalize c) = Problems.Instance.encode c)

let prop_canon_preserves_outcome =
  QCheck.Test.make
    ~name:"canonical memoization never changes the verdict or fingerprint"
    ~count:8
    QCheck.(int_bound 10000)
    (fun root ->
      let machine = Machines.staircase_checkphi ~space ~chains:2 ~optimistic:true in
      let census canon =
        Adv.attack_census ~seed:root ~canon
          (Random.State.make [| 1 |])
          ~space ~machine ()
      in
      let on = census true and off = census false in
      Int64.equal on.Adv.fingerprint off.Adv.fingerprint
      && outcome_fingerprint on.Adv.outcome = outcome_fingerprint off.Adv.outcome
      (* the lever saved work without changing a bit of the verdict *)
      && on.Adv.machine_runs < off.Adv.machine_runs)

let prop_shard_merge_matches_direct =
  QCheck.Test.make
    ~name:"shard merge equals the unsharded census for any (seed, k)" ~count:6
    QCheck.(pair (int_bound 10000) (int_range 1 5))
    (fun (root, k) ->
      let machine = Machines.staircase_checkphi ~space ~chains:2 ~optimistic:true in
      let direct =
        Adv.attack_census ~seed:root (Random.State.make [| 1 |]) ~space ~machine ()
      in
      let evs =
        List.init k (fun i ->
            Adv.Shard.collect ~root ~space ~machine ~shard:(i + 1) ~of_:k ())
      in
      let merged = Adv.Shard.merge ~space ~machine evs in
      Int64.equal direct.Adv.fingerprint merged.Adv.fingerprint
      && outcome_fingerprint direct.Adv.outcome
         = outcome_fingerprint merged.Adv.outcome)

let prop_evidence_roundtrip =
  QCheck.Test.make ~name:"shard evidence survives to_string/of_string" ~count:10
    QCheck.(int_bound 10000)
    (fun root ->
      let machine = Machines.random_chain_checkphi ~space in
      let ev = Adv.Shard.collect ~root ~space ~machine ~shard:1 ~of_:2 () in
      let ev' = Adv.Shard.of_string (Adv.Shard.to_string ev) in
      ev' = ev
      && Int64.equal (Adv.Shard.fingerprint ev') (Adv.Shard.fingerprint ev))

let test_verify_fooled_rejects_others () =
  let machine = Machines.blind ~input_length:16 ~accept:true in
  check "not-fooled does not verify" false
    (Adv.verify_fooled ~space ~machine
       (Adv.Not_fooled { reason = "x"; yes_acceptance = 1.0; skeleton_classes = 1 }))

(* ------------------------------------------------------------------ *)
(* Composition lemma *)

let values_of inst =
  Array.append (Problems.Instance.xs inst) (Problems.Instance.ys inst)

let test_composition_holds () =
  let st = Random.State.make [| 34 |] in
  let machine = Machines.staircase_checkphi ~space ~chains:1 ~optimistic:true in
  let phi = G.Checkphi.phi space in
  (* find an uncompared i0 from a run *)
  let base = G.Checkphi.yes st space in
  let tr = Nlm.run machine ~values:(values_of base) ~choices:(fun _ -> 0) in
  let sk = Listmachine.Skeleton.of_trace tr in
  match Listmachine.Skeleton.uncompared_phi_indices sk ~m:8 ~phi with
  | [] -> Alcotest.fail "expected uncompared indices"
  | i0 :: _ ->
      (* w: same as v except the value at x-position i0 / y-position phi(i0) *)
      let intervals = G.Checkphi.intervals space in
      let v = values_of base in
      let w = Array.copy v in
      let fresh = Problems.Intervals.random_element st intervals
          (Util.Permutation.apply phi i0)
      in
      w.(i0 - 1) <- fresh;
      w.(8 + Util.Permutation.apply phi i0 - 1) <- fresh;
      (match
         Comp.check ~machine ~choices:(fun _ -> 0) ~v ~w ~i:i0
           ~i':(8 + Util.Permutation.apply phi i0) ()
       with
      | Comp.Holds -> ()
      | Comp.Precondition_failed msg -> Alcotest.fail ("precondition: " ^ msg)
      | Comp.Violated msg -> Alcotest.fail ("violated: " ^ msg))

let test_composition_precondition_compared () =
  let st = Random.State.make [| 35 |] in
  let needed = Machines.chains_needed ~space in
  let machine = Machines.staircase_checkphi ~space ~chains:needed ~optimistic:false in
  let phi = G.Checkphi.phi space in
  let base = G.Checkphi.yes st space in
  let v = values_of base in
  let intervals = G.Checkphi.intervals space in
  let fresh = Problems.Intervals.random_element st intervals (Util.Permutation.apply phi 1) in
  let w = Array.copy v in
  w.(0) <- fresh;
  w.(8 + Util.Permutation.apply phi 1 - 1) <- fresh;
  match
    Comp.check ~machine ~choices:(fun _ -> 0) ~v ~w ~i:1
      ~i':(8 + Util.Permutation.apply phi 1) ()
  with
  | Comp.Precondition_failed _ -> ()
  | Comp.Holds -> Alcotest.fail "complete machine compares pair 1; lemma must not apply"
  | Comp.Violated msg -> Alcotest.fail msg

let test_composition_validates_args () =
  let machine = Machines.blind ~input_length:4 ~accept:true in
  try
    ignore
      (Comp.check ~machine ~choices:(fun _ -> 0) ~v:[| "a"; "b"; "c"; "d" |]
         ~w:[| "x"; "y"; "c"; "d" |] ~i:1 ~i':3 ());
    Alcotest.fail "differing outside {i,i'} accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Parameters (Lemma 21 / Lemma 22) *)

let test_lemma21_thresholds () =
  let th = Params.lemma21_thresholds ~t:2 ~r:1 ~m:2000 ~k:4003 in
  Alcotest.(check (float 1e-6)) "min_m = 24*3^4+1" 1945.0 th.Params.min_m;
  check_int "min_k" 4003 th.Params.min_k;
  check "m,k,n consistent" true
    (Params.lemma21_ok ~t:2 ~r:1 ~m:2000 ~k:4003 ~n:60_000_000);
  check "n too small" false (Params.lemma21_ok ~t:2 ~r:1 ~m:2000 ~k:4003 ~n:1000)

let test_lemma22_equations () =
  check_int "input size" (2 * 8 * 513) (Params.input_size ~m:8);
  (* with constant r, eq3 holds for large m *)
  check "eq3 at large m" true (Params.eq3_holds ~t:2 ~r:(Params.r_const 1) ~m:4096);
  check "eq3 fails for log r at small m" false
    (Params.eq3_holds ~t:2 ~r:(Params.r_log ()) ~m:64)

let test_find_min_m () =
  (* constant r (an o(log N) function): a threshold m exists *)
  (match
     Params.find_min_m ~t:2 ~d:4 ~r:(Params.r_const 1) ~s:(Params.s_fourth_root ())
       ~cap:(1 lsl 14)
   with
  | Some m ->
      check "power of two" true (m land (m - 1) = 0);
      check "eq3 holds" true (Params.eq3_holds ~t:2 ~r:(Params.r_const 1) ~m);
      check "eq4 holds" true
        (Params.eq4_holds ~t:2 ~d:4 ~r:(Params.r_const 1) ~s:(Params.s_fourth_root ()) ~m)
  | None -> Alcotest.fail "constant r should admit an m");
  (* r = Theta(log N): no threshold below the cap - the tightness story *)
  match
    Params.find_min_m ~t:2 ~d:4 ~r:(Params.r_log ()) ~s:(Params.s_fourth_root ())
      ~cap:(1 lsl 14)
  with
  | None -> ()
  | Some m -> Alcotest.fail (Printf.sprintf "log r admitted m=%d" m)

(* ------------------------------------------------------------------ *)
(* Classes *)

let test_admits () =
  let spec =
    Stcore.Classes.make_spec ~mode:Stcore.Classes.Deterministic
      ~r:(fun n -> max 1 (int_of_float (log (float_of_int n) /. log 2.0)))
      ~s:(fun _ -> 8)
      ~t:2
      ~label:"ST(log N, 8, 2)" ()
  in
  check "fits" true
    (Stcore.Classes.admits spec { Stcore.Classes.n = 1024; scans = 10; space = 4; tapes = 2 });
  check "too many scans" false
    (Stcore.Classes.admits spec { Stcore.Classes.n = 1024; scans = 11; space = 4; tapes = 2 });
  check "too many tapes" false
    (Stcore.Classes.admits spec { Stcore.Classes.n = 1024; scans = 5; space = 4; tapes = 3 })

let test_paper_results_coverage () =
  let r = Stcore.Classes.paper_results in
  check "nonempty" true (List.length r >= 20);
  (* each of the three decision problems has both a lower and an upper bound *)
  List.iter
    (fun p ->
      check (p ^ " has lower bound") true
        (List.exists
           (fun m -> m.Stcore.Classes.problem = p && not m.Stcore.Classes.member)
           r);
      check (p ^ " has upper bound") true
        (List.exists
           (fun m -> m.Stcore.Classes.problem = p && m.Stcore.Classes.member)
           r))
    [ "SET-EQUALITY"; "MULTISET-EQUALITY"; "CHECK-SORT" ]

(* ------------------------------------------------------------------ *)
(* Lemma 26 *)

let test_lemma26_exact_on_coin () =
  (* the coin machine accepts with probability 1/2 on every input; a
     best fixed sequence accepts either all or none per input, and the
     best over both branches accepts everything *)
  let machine = Machines.coin ~input_length:1 in
  let inputs = [ [| "a" |]; [| "b" |] ] in
  let fixed = Stcore.Lemma26.exact_best machine ~inputs in
  check "meets floor" true (Stcore.Lemma26.meets_lemma_floor fixed ~inputs);
  check_int "coin: one sequence accepts everything" 2
    (List.length fixed.Stcore.Lemma26.accepted)

let test_lemma26_sampled_matches_deterministic () =
  let st = Random.State.make [| 36 |] in
  let needed = Machines.chains_needed ~space in
  let machine = Machines.staircase_checkphi ~space ~chains:needed ~optimistic:false in
  let inputs =
    List.init 10 (fun _ ->
        let i = G.Checkphi.yes st space in
        values_of i)
  in
  let fixed = Stcore.Lemma26.sampled_best st machine ~inputs in
  check_int "deterministic machine accepts all yes" 10
    (List.length fixed.Stcore.Lemma26.accepted);
  check "floor" true (Stcore.Lemma26.meets_lemma_floor fixed ~inputs)

let test_lemma26_exact_guard () =
  let machine = Machines.coin ~input_length:1 in
  try
    ignore
      (Stcore.Lemma26.exact_best ~max_length:64 machine ~inputs:[ [| "a" |] ]
       |> fun f -> f.Stcore.Lemma26.accepted);
    (* coin runs have length 1, so even max_length 64 only enumerates
       |C|^1 = 2: no failure expected *)
    ()
  with Invalid_argument _ -> Alcotest.fail "guard fired on a short machine"

(* ------------------------------------------------------------------ *)
(* Boost *)

let test_boost_error_algebra () =
  let st = Random.State.make [| 37 |] in
  (* a decider accepting with probability exactly 1/4 *)
  let quarter st () = Random.State.int st 4 = 0 in
  let boosted = Stcore.Boost.repeat_or ~rounds:2 quarter in
  let p = Stcore.Boost.estimate_acceptance st ~samples:20000 boosted () in
  (* 1 - (3/4)^2 = 0.4375 *)
  check (Printf.sprintf "repeat_or p=%.3f" p) true (abs_float (p -. 0.4375) < 0.02);
  let anded = Stcore.Boost.repeat_and ~rounds:2 quarter in
  let q = Stcore.Boost.estimate_acceptance st ~samples:20000 anded () in
  (* (1/4)^2 = 0.0625 *)
  check (Printf.sprintf "repeat_and q=%.3f" q) true (abs_float (q -. 0.0625) < 0.01)

let test_boost_preserves_one_sidedness () =
  let st = Random.State.make [| 38 |] in
  (* RST-style decider for CHECK-phi yes/no: accept only after a full
     verification - never accepts a no-instance, and boosting keeps that *)
  let machine =
    Machines.staircase_checkphi ~space ~chains:(Machines.chains_needed ~space)
      ~optimistic:false
  in
  let decider _st inst =
    (Nlm.run machine ~values:(values_of inst) ~choices:(fun _ -> 0)).Nlm.accepted
  in
  let boosted = Stcore.Boost.repeat_or ~rounds:4 decider in
  for _ = 1 to 20 do
    let no = G.Checkphi.no st space in
    check "no false positives survive boosting" false (boosted st no)
  done

let test_boost_rounds_for () =
  check_int "half to 1/16" 4 (Stcore.Boost.rounds_for ~target:0.0625 ~base:0.5);
  check_int "already enough" 1 (Stcore.Boost.rounds_for ~target:0.9 ~base:0.5);
  try
    ignore (Stcore.Boost.rounds_for ~target:0.5 ~base:1.0);
    Alcotest.fail "base 1.0 accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "stcore"
    [
      ( "adversary",
        [
          Alcotest.test_case "fools truncated machines" `Slow
            test_adversary_fools_truncated;
          Alcotest.test_case "respects complete machine" `Quick
            test_adversary_respects_complete_machine;
          Alcotest.test_case "flags contract violations" `Quick
            test_adversary_flags_contract_violation;
          Alcotest.test_case "fools blind-accept" `Quick test_adversary_fools_blind_accept;
          Alcotest.test_case "verify_fooled rejects others" `Quick
            test_verify_fooled_rejects_others;
          Alcotest.test_case "worker-count parity" `Quick
            test_attack_worker_parity;
          QCheck_alcotest.to_alcotest prop_canonicalize_idempotent;
          QCheck_alcotest.to_alcotest prop_canon_preserves_outcome;
          QCheck_alcotest.to_alcotest prop_shard_merge_matches_direct;
          QCheck_alcotest.to_alcotest prop_evidence_roundtrip;
        ] );
      ( "composition",
        [
          Alcotest.test_case "lemma 34 holds" `Quick test_composition_holds;
          Alcotest.test_case "compared pair: precondition fails" `Quick
            test_composition_precondition_compared;
          Alcotest.test_case "argument validation" `Quick test_composition_validates_args;
        ] );
      ( "parameters",
        [
          Alcotest.test_case "lemma 21 thresholds" `Quick test_lemma21_thresholds;
          Alcotest.test_case "lemma 22 equations" `Quick test_lemma22_equations;
          Alcotest.test_case "find_min_m tightness" `Quick test_find_min_m;
        ] );
      ( "classes",
        [
          Alcotest.test_case "admits" `Quick test_admits;
          Alcotest.test_case "paper results table" `Quick test_paper_results_coverage;
        ] );
      ( "lemma 26",
        [
          Alcotest.test_case "exact on coin" `Quick test_lemma26_exact_on_coin;
          Alcotest.test_case "sampled, deterministic machine" `Quick
            test_lemma26_sampled_matches_deterministic;
          Alcotest.test_case "enumeration guard" `Quick test_lemma26_exact_guard;
        ] );
      ( "boost",
        [
          Alcotest.test_case "error algebra" `Quick test_boost_error_algebra;
          Alcotest.test_case "one-sidedness preserved" `Quick
            test_boost_preserves_one_sidedness;
          Alcotest.test_case "rounds_for" `Quick test_boost_rounds_for;
        ] );
    ]
