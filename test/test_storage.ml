(* Tests for the below-seam storage hardening: the seeded syscall
   fault plan (determinism, ENOSPC persistence, crash points), CRC
   corruption detection with tape name + offset, quarantine recovery
   through the retrying deciders, fatal-vs-transient classification,
   label-keyed deterministic backoff, the no-orphans guarantee on a
   full disk, and the offline scrubber. *)

module D = Problems.Decide
module G = Problems.Generators
module S = Faults.Storage
module Dev = Tape.Device

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "stlb-storage-test-%d-%d" (Unix.getpid ()) !counter)
    in
    d

let files_under root =
  let rec go acc p =
    if Sys.file_exists p && Sys.is_directory p then
      Array.fold_left (fun acc f -> go acc (Filename.concat p f)) acc (Sys.readdir p)
    else if Sys.file_exists p then p :: acc
    else acc
  in
  go [] root

let rm_rf root = ignore (Dev.Scrub.dir ~fix:true root)

(* ------------------------------------------------------------------ *)
(* plan determinism and semantics *)

(* Replay the exact sequence of injected outcomes against scratch fds:
   two identically-seeded plans must inject identically, and a
   reseeded plan differently. *)
let outcome_trace ~seed ~rates n =
  let plan = S.Plan.create ~seed ~rates () in
  let raw = S.raw_for plan ~name:"t" in
  let path = Filename.temp_file "stlb-storage" ".bin" in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let buf = Bytes.make 64 'a' in
  let out =
    List.init n (fun i ->
        try
          if i mod 2 = 0 then
            `W (raw.Dev.Raw.pwrite fd buf ~pos:0 ~len:64 ~off:0)
          else `R (raw.Dev.Raw.pread fd buf ~pos:0 ~len:64 ~off:0)
        with
        | Unix.Unix_error (e, _, _) -> `E e
        | S.Crashed { op } -> `C op)
  in
  Unix.close fd;
  Sys.remove path;
  (out, S.Plan.ops plan)

let test_plan_deterministic () =
  let rates =
    { S.bit_rot = 0.2; short_read = 0.3; short_write = 0.3; io_error = 0.1;
      torn_write = 0.1 }
  in
  let a, ops_a = outcome_trace ~seed:11 ~rates 200 in
  let b, ops_b = outcome_trace ~seed:11 ~rates 200 in
  check "same seed -> identical injected outcomes" true (a = b);
  check_int "same seed -> identical op counts" ops_a ops_b;
  let c, _ = outcome_trace ~seed:12 ~rates 200 in
  check "different seed -> different outcomes" true (a <> c)

let test_plan_rejects_bad_rates () =
  Alcotest.check_raises "rate > 1 rejected"
    (Invalid_argument "Faults: bit_rot rate 1.5 outside [0,1]")
    (fun () ->
      ignore
        (S.Plan.create ~seed:0 ~rates:{ S.zero with S.bit_rot = 1.5 } ()))

(* A full disk stays full: the k-th and every later write fails. *)
let test_enospc_persists () =
  let plan = S.Plan.create ~enospc_after:3 ~seed:0 ~rates:S.zero () in
  let raw = S.raw_for plan ~name:"t" in
  let path = Filename.temp_file "stlb-storage" ".bin" in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let buf = Bytes.make 8 'x' in
  let w () =
    try `Ok (raw.Dev.Raw.pwrite fd buf ~pos:0 ~len:8 ~off:0)
    with Unix.Unix_error (Unix.ENOSPC, _, _) -> `Enospc
  in
  check "write 1 ok" true (w () = `Ok 8);
  check "write 2 ok" true (w () = `Ok 8);
  check "write 3 fails" true (w () = `Enospc);
  check "write 4 still fails" true (w () = `Enospc);
  check "reads unaffected by a full disk" true
    (raw.Dev.Raw.pread fd buf ~pos:0 ~len:8 ~off:0 = 8);
  Unix.close fd;
  Sys.remove path

let test_crash_at_fires_exactly_once () =
  let plan = S.Plan.create ~crash_at:3 ~seed:0 ~rates:S.zero () in
  let raw = S.raw_for plan ~name:"t" in
  let path = Filename.temp_file "stlb-storage" ".bin" in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let buf = Bytes.make 8 'x' in
  let w () =
    try `Ok (raw.Dev.Raw.pwrite fd buf ~pos:0 ~len:8 ~off:0)
    with S.Crashed { op } -> `Crashed op
  in
  check "op 1 survives" true (w () = `Ok 8);
  check "op 2 survives" true (w () = `Ok 8);
  check "op 3 crashes" true (w () = `Crashed 3);
  check "op 4 survives (in-process hook fires exactly once)" true (w () = `Ok 8);
  Unix.close fd;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* corruption detection and recovery *)

let char_dev ?raw dir =
  Dev.instantiate ~codec:Dev.Codec.tuple_char
    (Dev.file_spec ~block_bytes:64 ~cache_blocks:1 ?raw dir)
    ~blank:'_' ~name:"victim"

(* Flip a payload byte on disk behind the cache's back: the next load
   must raise [Corrupt] carrying the tape name and the cell offset of
   the poisoned block - never return the rotten cell. *)
let test_corrupt_readback_names_tape_and_offset () =
  let dir = fresh_dir () in
  let dev = char_dev dir in
  let slots = 64 / 4 in
  Dev.set dev 0 'a';
  ignore (Dev.get dev slots);
  (* block 0 evicted + flushed *)
  (match files_under dir with
  | [ path ] ->
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      (* 16-byte header, 1-byte presence, 4-byte CRC, then payload *)
      ignore (Unix.lseek fd 21 Unix.SEEK_SET);
      ignore (Unix.write_substring fd "Z" 0 1);
      Unix.close fd
  | fs -> Alcotest.failf "expected one backing file, got %d" (List.length fs));
  let before = Dev.corrupt_detected () in
  (try
     ignore (Dev.get dev 0);
     Alcotest.fail "rotten block read back without Corrupt"
   with Dev.Corrupt { device; offset; _ } ->
     check_string "tape name" "victim" device;
     check_int "cell offset of the bad block" 0 offset);
  check "detection counted" true (Dev.corrupt_detected () > before);
  (* the flip is persistent (rot at rest), but the flush of the healthy
     cached state rewrites the block: a quarantined re-read succeeds *)
  Dev.close dev;
  rm_rf dir

(* End to end: a decider on a file device under transient read-back
   rot heals through quarantine + re-read + phase retry and reaches
   the right verdict; the ledger shows the recovery was paid for. *)
let test_decider_heals_transient_rot () =
  let dir = fresh_dir () in
  let st = Random.State.make [| 5 |] in
  let inst = G.yes_instance st D.Multiset_equality ~m:64 ~n:8 in
  let plan = S.Plan.create ~seed:3 ~rates:{ S.zero with S.bit_rot = 0.002 } () in
  let device =
    Dev.file_spec ~block_bytes:128 ~cache_blocks:2 ~raw:(S.raw_for plan) dir
  in
  let retry = { Faults.Retry.default with Faults.Retry.attempts = 12 } in
  let clean, _ = Extsort.multiset_equality inst in
  let ok, _ = Extsort.multiset_equality ~retry ~device inst in
  check "verdict matches the in-RAM run" clean ok;
  check "faults actually fired" true (S.Plan.ops plan > 0);
  check "no spill files left" true (files_under dir = []);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* classification and backoff *)

let test_enospc_is_fatal_not_retried () =
  let attempts = ref 0 in
  (try
     Faults.Retry.run ~label:"t" (fun () ->
         incr attempts;
         raise (Unix.Unix_error (Unix.ENOSPC, "pwrite", "")))
   with Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  check_int "ENOSPC never retried" 1 !attempts;
  let attempts = ref 0 in
  (try
     Faults.Retry.run ~label:"t" (fun () ->
         incr attempts;
         raise (Unix.Unix_error (Unix.EROFS, "pwrite", "")))
   with Unix.Unix_error (Unix.EROFS, _, _) -> ());
  check_int "EROFS never retried" 1 !attempts;
  let attempts = ref 0 in
  (try
     Faults.Retry.run ~label:"t" (fun () ->
         incr attempts;
         raise (Unix.Unix_error (Unix.EIO, "pread", "")))
   with Faults.Retry.Gave_up _ -> ());
  check "EIO is transient (retried to exhaustion)" true (!attempts > 1)

let test_corrupt_is_transient () =
  check "Corrupt classified transient" true
    (Faults.Retry.is_transient
       (Dev.Corrupt { device = "t"; path = "p"; offset = 0 }))

(* The backoff jitter is derived from (seed, label, attempt): a fixed
   policy replays the same delays in the same run and across -j 1/2/4
   (nothing draws from shared state), and distinct labels de-correlate
   their delays. *)
let test_backoff_label_jitter_deterministic () =
  let policy = { Faults.Retry.default with Faults.Retry.base_backoff_s = 0.01 } in
  let sleeps label =
    let out = ref [] in
    let policy = { policy with Faults.Retry.sleep = (fun s -> out := s :: !out) } in
    (try
       Faults.Retry.run ~policy ~seed:9 ~label (fun () ->
           raise (Unix.Unix_error (Unix.EIO, "x", "")))
     with Faults.Retry.Gave_up _ -> ());
    List.rev !out
  in
  let a = sleeps "phase-a" in
  check "backoff recorded" true (List.length a = 2);
  check "same label -> identical backoff" true (a = sleeps "phase-a");
  check "different label -> different jitter" true (a <> sleeps "phase-b");
  check "delays grow exponentially" true
    (match a with [ d1; d2 ] -> d2 > d1 | _ -> false)

(* ------------------------------------------------------------------ *)
(* the ENOSPC abort contract: exit loudly, leave nothing behind *)

let test_enospc_mid_sort_leaves_no_orphans () =
  let dir = fresh_dir () in
  let st = Random.State.make [| 6 |] in
  let inst = G.yes_instance st D.Multiset_equality ~m:64 ~n:8 in
  let aborted = ref false in
  (* k=5 lands mid-preload: some backing files exist, some are being
     created - the hardest point to clean up after *)
  List.iter
    (fun k ->
      let plan = S.Plan.create ~enospc_after:k ~seed:0 ~rates:S.zero () in
      let device =
        Dev.file_spec ~block_bytes:128 ~cache_blocks:2 ~raw:(S.raw_for plan) dir
      in
      (try ignore (Extsort.multiset_equality ~device inst)
       with Unix.Unix_error ((Unix.ENOSPC | Unix.EROFS), _, _) -> aborted := true);
      check
        (Printf.sprintf "no orphan spill files after ENOSPC at op %d" k)
        true
        (files_under dir = []))
    [ 1; 2; 5; 9; 40 ];
  check "at least one run aborted with ENOSPC" true !aborted;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* scrub *)

let be32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int v);
  Bytes.to_string b

let write_file path s =
  let oc = Out_channel.open_bin path in
  Out_channel.output_string oc s;
  Out_channel.close oc

let test_scrub_detects_and_fixes () =
  let root = fresh_dir () in
  Unix.mkdir root 0o755;
  (* tape file: good frame, rotted frame, torn 3-byte tail *)
  let payload = "\x00\x04GOOD" in
  let frame p = "\x01" ^ be32 (Dev.crc32 p) ^ p in
  write_file
    (Filename.concat root "t-0.tape")
    ("STLBTAP2" ^ be32 6 ^ be32 6
    ^ frame payload
    ^ "\x01" ^ be32 (Dev.crc32 payload) ^ "\x00\x04ROTT"
    ^ "\x01\x02\x03");
  (* shard dir: vouched-for shard, unlisted orphan, torn tmp *)
  let sdir = Filename.concat root "s-1" in
  Unix.mkdir sdir 0o755;
  let sp = "\x01\x02a\x00" in
  let shard p = "STLBSHD2" ^ be32 (Dev.crc32 p) ^ p in
  write_file (Filename.concat sdir "run-000000.shard") (shard sp);
  write_file (Filename.concat sdir "run-000001.shard") (shard "\x01\x02b\x00");
  write_file (Filename.concat sdir "run-000002.shard.tmp") "half";
  write_file (Filename.concat sdir "MANIFEST")
    (Printf.sprintf "STLBMAN2\n%08x %d run-000000.shard\n" (Dev.crc32 sp)
       (String.length sp));
  let count what (r : Dev.Scrub.report) =
    List.length
      (List.filter (fun (f : Dev.Scrub.finding) -> f.Dev.Scrub.what = what)
         r.Dev.Scrub.findings)
  in
  let r = Dev.Scrub.dir root in
  check_int "crc-mismatch found" 1 (count "crc-mismatch" r);
  check_int "torn frames found (tape tail + shard tmp)" 2 (count "torn" r);
  check_int "orphan found" 1 (count "orphan" r);
  check_int "nothing removed without --fix" 0 r.Dev.Scrub.removed;
  let rf = Dev.Scrub.dir ~fix:true root in
  check "fix removed the flagged files" true (rf.Dev.Scrub.removed >= 3);
  let r2 = Dev.Scrub.dir root in
  check_int "re-scrub after fix is clean" 0 (List.length r2.Dev.Scrub.findings);
  check "the vouched-for survivor is intact" true
    (Sys.file_exists (Filename.concat sdir "run-000000.shard"));
  rm_rf root

let test_scrub_missing_root_is_empty () =
  let r = Dev.Scrub.dir (fresh_dir ()) in
  check_int "no files" 0 r.Dev.Scrub.files_checked;
  check_int "no findings" 0 (List.length r.Dev.Scrub.findings)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "storage"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "bad rates rejected" `Quick test_plan_rejects_bad_rates;
          Alcotest.test_case "ENOSPC persists" `Quick test_enospc_persists;
          Alcotest.test_case "crash point" `Quick test_crash_at_fires_exactly_once;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "Corrupt carries tape + offset" `Quick
            test_corrupt_readback_names_tape_and_offset;
          Alcotest.test_case "decider heals transient rot" `Quick
            test_decider_heals_transient_rot;
        ] );
      ( "classification",
        [
          Alcotest.test_case "ENOSPC/EROFS fatal" `Quick
            test_enospc_is_fatal_not_retried;
          Alcotest.test_case "Corrupt transient" `Quick test_corrupt_is_transient;
          Alcotest.test_case "label-keyed backoff" `Quick
            test_backoff_label_jitter_deterministic;
        ] );
      ( "enospc",
        [
          Alcotest.test_case "no orphans mid-sort" `Quick
            test_enospc_mid_sort_leaves_no_orphans;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "detect and fix" `Quick test_scrub_detects_and_fixes;
          Alcotest.test_case "missing root" `Quick test_scrub_missing_root_is_empty;
        ] );
    ]
