(* Tests for the observability layer: the Tape.Observer seam and the
   ledger recorder (exact counts, future-tape instrumentation), the
   theorem-budget audits of Theorem 8(a)/(b) and Corollary 7 (positive
   on the real deciders across N = 2^8 .. 2^14, negative on a
   deliberately over-budget zigzag machine), ledger/trace determinism
   across worker counts, the process-wide counters, and the checkpoint
   discard accounting. *)

module D = Problems.Decide
module G = Problems.Generators
module I = Problems.Instance
module Pool = Parallel.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let state seed = Random.State.make [| seed |]

(* ------------------------------------------------------------------ *)
(* observer seam / recorder exact counts *)

let test_recorder_exact_counts () =
  let r = Obs.Ledger.Recorder.create ~label:"exact" () in
  let g = Tape.Group.create () in
  Obs.Ledger.Recorder.observe r g;
  let t = Tape.Group.tape_of_list g ~name:"a" ~blank:"" [ "x"; "y"; "z" ] in
  (* 3 reads walking right, then 2 moves back, 1 write *)
  for _ = 1 to 3 do
    ignore (Tape.read t);
    Tape.move t Tape.Right
  done;
  Tape.move t Tape.Left;
  Tape.move t Tape.Left;
  Tape.write t "w";
  let l = Obs.Ledger.Recorder.ledger ~n:3 r in
  check_int "one tape" 1 (Obs.Ledger.tape_count l);
  check_int "reads" 3 (Obs.Ledger.reads l);
  check_int "writes" 1 (Obs.Ledger.writes l);
  check_int "moves" 5 (Obs.Ledger.head_moves l);
  check_int "reversals" 1 l.Obs.Ledger.reversals;
  check_int "scans" 2 l.Obs.Ledger.scans

(* The group observer factory must reach tapes registered AFTER
   [observe] — that is how the recorder sees the auxiliary tapes the
   sort creates internally. *)
let test_recorder_observes_future_tapes () =
  let r = Obs.Ledger.Recorder.create () in
  let g = Tape.Group.create () in
  Obs.Ledger.Recorder.observe r g;
  let _early = Tape.Group.tape_of_list g ~name:"early" ~blank:"" [ "e" ] in
  let late = Tape.Group.tape g ~name:"late" ~blank:"" () in
  Tape.write late "v";
  ignore (Tape.read late);
  let l = Obs.Ledger.Recorder.ledger r in
  check_int "both tapes in ledger" 2 (Obs.Ledger.tape_count l);
  let late_stats =
    List.find (fun (ts : Obs.Ledger.tape_stats) -> ts.Obs.Ledger.tape = "late")
      l.Obs.Ledger.tapes
  in
  check_int "late tape write seen" 1 late_stats.Obs.Ledger.writes;
  check_int "late tape read seen" 1 late_stats.Obs.Ledger.reads

let test_sort_ledger_matches_report () =
  let r = Obs.Ledger.Recorder.create ~label:"sort" () in
  let items = List.init 64 (fun i -> Printf.sprintf "%03d" ((i * 37) mod 64)) in
  let sorted, rep = Extsort.sort ~obs:r items in
  check "output sorted" true (sorted = List.sort String.compare items);
  let l = Obs.Ledger.Recorder.ledger ~n:64 r in
  check_int "ledger scans = report scans" rep.Extsort.scans l.Obs.Ledger.scans;
  check_int "ledger reversals" rep.Extsort.reversals l.Obs.Ledger.reversals;
  check_int "ledger tapes = report tapes" rep.Extsort.tapes
    (Obs.Ledger.tape_count l);
  check "heads moved" true (Obs.Ledger.head_moves l > 0);
  check "cells written" true (Obs.Ledger.writes l > 0)

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let prop_sort_is_sorted_permutation =
  QCheck.Test.make ~name:"ledgered sort = sorted permutation" ~count:60
    QCheck.(list_of_size (Gen.int_range 0 40) (string_of_size (Gen.return 4)))
    (fun items ->
      let r = Obs.Ledger.Recorder.create () in
      let sorted, rep = Extsort.sort ~obs:r items in
      let l = Obs.Ledger.Recorder.ledger ~n:(List.length items) r in
      sorted = List.sort String.compare items
      && l.Obs.Ledger.scans = rep.Extsort.scans
      && l.Obs.Ledger.internal_peak = rep.Extsort.register_peak)

let prop_fingerprint_accepts_equal_multisets =
  (* one-sided error: a YES instance is never rejected *)
  QCheck.Test.make ~name:"fingerprint never rejects equal multisets" ~count:80
    QCheck.(pair (int_range 1 24) (int_bound 100000))
    (fun (m, seed) ->
      let st = state seed in
      let inst = G.yes_instance st D.Multiset_equality ~m ~n:8 in
      Fingerprint.decide st inst)

let prop_bertrand_prime_in_range =
  QCheck.Test.make ~name:"bertrand_prime k is a prime in (3k, 6k]" ~count:200
    QCheck.(int_range 1 5000)
    (fun k ->
      let p = Numtheory.bertrand_prime k in
      Numtheory.is_prime p && p > 3 * k && p <= 6 * k)

(* ------------------------------------------------------------------ *)
(* audits: the real deciders pass their theorem budgets *)

let audit_sizes = [ 12; 47; 186; 745 ] (* N = 2m(n+1), n=10: 2^8 .. 2^14 *)

let test_fingerprint_audit_passes () =
  let st = state 50 in
  List.iter
    (fun m ->
      let inst = G.yes_instance st D.Multiset_equality ~m ~n:10 in
      let r = Obs.Ledger.Recorder.create () in
      let _, _, params = Fingerprint.run ~obs:r st inst in
      let l = Obs.Ledger.Recorder.ledger ~n:params.Fingerprint.input_size r in
      let o = Obs.Audit.check Obs.Audit.fingerprint_spec l in
      check (Printf.sprintf "fingerprint within Thm 8(a) at m=%d" m) true
        o.Obs.Audit.ok;
      (* and [enforce] is silent on a passing run *)
      Obs.Audit.enforce Obs.Audit.fingerprint_spec l)
    audit_sizes

let test_mergesort_audit_passes () =
  let st = state 51 in
  List.iter
    (fun m ->
      let inst = G.yes_instance st D.Multiset_equality ~m ~n:10 in
      let r = Obs.Ledger.Recorder.create () in
      let ok, _ = Extsort.multiset_equality ~obs:r inst in
      check "verdict yes" true ok;
      let l = Obs.Ledger.Recorder.ledger ~n:(I.size inst) r in
      let o = Obs.Audit.check Obs.Audit.mergesort_spec l in
      check (Printf.sprintf "merge sort within Cor 7 at m=%d" m) true
        o.Obs.Audit.ok)
    audit_sizes

let test_nst_audit_passes () =
  let st = state 52 in
  List.iter
    (fun m ->
      let inst = G.yes_instance st D.Multiset_equality ~m ~n:10 in
      let r = Obs.Ledger.Recorder.create () in
      let ok, _ = Nst.decide_with_prover ~obs:r D.Multiset_equality inst in
      check "verdict yes" true ok;
      let l = Obs.Ledger.Recorder.ledger ~n:(I.size inst) r in
      let o = Obs.Audit.check Obs.Audit.nst_spec l in
      check (Printf.sprintf "NST verifier within Thm 8(b) at m=%d" m) true
        o.Obs.Audit.ok)
    audit_sizes

(* The audit is falsifiable: a machine that reverses once per item is
   an O(N)-scan machine and must FAIL the O(log N) Corollary 7 budget,
   and [enforce] must raise on it. *)
let zigzag_ledger m =
  let st = state 53 in
  let inst = G.yes_instance st D.Multiset_equality ~m ~n:10 in
  let r = Obs.Ledger.Recorder.create ~label:"zigzag" () in
  let g = Tape.Group.create () in
  Obs.Ledger.Recorder.observe r g;
  let items =
    Array.to_list (Array.map Util.Bitstring.to_string (I.xs inst))
  in
  let t = Tape.Group.tape_of_list g ~name:"data" ~blank:"" items in
  for i = 0 to m - 1 do
    while Tape.position t < i do
      Tape.move t Tape.Right
    done;
    while Tape.position t > 0 do
      Tape.move t Tape.Left
    done
  done;
  Obs.Ledger.Recorder.ledger ~n:(I.size inst) r

let test_audit_rejects_overbudget_machine () =
  let l = zigzag_ledger 186 in
  let o = Obs.Audit.check Obs.Audit.mergesort_spec l in
  check "zigzag fails the scan budget" false o.Obs.Audit.ok;
  let scans_check =
    List.find
      (fun (c : Obs.Audit.check) -> c.Obs.Audit.resource = "scans")
      o.Obs.Audit.checks
  in
  check "scans is the violated resource" false scans_check.Obs.Audit.ok;
  check "enforce raises Budget_violated" true
    (try
       Obs.Audit.enforce Obs.Audit.mergesort_spec l;
       false
     with Obs.Audit.Budget_violated o' -> not o'.Obs.Audit.ok)

let test_wrong_spec_rejects_decider () =
  (* the 6-tape merge-sort decider cannot masquerade as the 1-tape
     2-scan fingerprint machine *)
  let st = state 54 in
  let inst = G.yes_instance st D.Multiset_equality ~m:47 ~n:10 in
  let r = Obs.Ledger.Recorder.create () in
  let _ = Extsort.multiset_equality ~obs:r inst in
  let l = Obs.Ledger.Recorder.ledger ~n:(I.size inst) r in
  check "mergesort ledger fails fingerprint spec" false
    (Obs.Audit.check Obs.Audit.fingerprint_spec l).Obs.Audit.ok

let test_mergesort_allowance_is_3x_extsort_bound () =
  (* the audit layer duplicates the closed form on purpose; keep the
     two in sync *)
  List.iter
    (fun n ->
      match Obs.Audit.mergesort_spec.Obs.Audit.scans with
      | Some b ->
          check_int
            (Printf.sprintf "allowance at n=%d" n)
            (3 * Extsort.theoretical_scan_bound ~n)
            (Obs.Audit.allowance b ~n)
      | None -> Alcotest.fail "mergesort spec has a scan bound")
    [ 2; 256; 1034; 16390; 1_000_000 ]

(* ------------------------------------------------------------------ *)
(* determinism across worker counts *)

let test_pool_counters_worker_count_invariant () =
  let counts =
    List.map
      (fun domains ->
        let pool = Pool.create ~domains () in
        let before = Obs.Counters.snapshot () in
        let hits =
          Pool.monte_carlo_count pool ~trials:100 ~seed:7 (fun st ->
              Random.State.bool st)
        in
        let d = Obs.Counters.diff (Obs.Counters.snapshot ()) ~since:before in
        (hits, d.Obs.Counters.pool_chunks))
      [ 1; 2; 4 ]
  in
  match counts with
  | (h1, c1) :: rest ->
      check "chunk count matches the chunking rule" true
        (c1 = (100 + Pool.trials_per_chunk - 1) / Pool.trials_per_chunk);
      List.iter
        (fun (h, c) ->
          check_int "hits invariant" h1 h;
          check_int "pool_chunks invariant" c1 c)
        rest
  | [] -> assert false

let test_ledgers_identical_across_runs () =
  let ledger () =
    let st = state 55 in
    let inst = G.yes_instance st D.Multiset_equality ~m:16 ~n:8 in
    let r = Obs.Ledger.Recorder.create ~label:"det" () in
    let _ = Extsort.multiset_equality ~obs:r inst in
    Obs.Ledger.Recorder.ledger ~n:(I.size inst) r
  in
  check "two runs, structurally equal ledgers" true (ledger () = ledger ())

let trace_bytes ~domains =
  let path = Filename.temp_file "stlb-test-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Trace.with_sink (Obs.Trace.open_file path) (fun () ->
          let st = state 56 in
          let inst = G.yes_instance st D.Multiset_equality ~m:16 ~n:8 in
          let pool = Pool.create ~domains () in
          (* pool work inside the recorder window: its chunk counters
             land in the ledger and must not depend on [domains] *)
          let r = Obs.Ledger.Recorder.create ~label:"trace" () in
          let _ =
            Pool.monte_carlo_count pool ~trials:60 ~seed:9 (fun st ->
                Random.State.bool st)
          in
          let _ = Extsort.multiset_equality ~obs:r inst in
          let l = Obs.Ledger.Recorder.ledger ~n:(I.size inst) r in
          Obs.Trace.ledger_current l;
          Obs.Trace.audit_current (Obs.Audit.check Obs.Audit.mergesort_spec l));
      In_channel.with_open_bin path In_channel.input_all)

let test_traces_identical_across_worker_counts () =
  let t1 = trace_bytes ~domains:1 in
  check "trace not empty" true (String.length t1 > 0);
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "-j %d trace = -j 1 trace" domains)
        t1
        (trace_bytes ~domains))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* counters from the retry combinators *)

let test_retry_counters () =
  let before = Obs.Counters.snapshot () in
  let attempts = ref 0 in
  let v =
    Faults.Retry.run ~label:"flaky" (fun () ->
        incr attempts;
        if !attempts < 3 then raise (Faults.Transient_io "flaky");
        !attempts)
  in
  check_int "succeeded on third attempt" 3 v;
  let d = Obs.Counters.diff (Obs.Counters.snapshot ()) ~since:before in
  check_int "two re-attempts counted" 2 d.Obs.Counters.retry_attempts;
  check_int "no give-up" 0 d.Obs.Counters.retry_gave_up;
  let before = Obs.Counters.snapshot () in
  (try
     Faults.Retry.run ~label:"doomed" (fun () ->
         raise (Faults.Transient_io "doomed"))
   with Faults.Retry.Gave_up _ -> ());
  let d = Obs.Counters.diff (Obs.Counters.snapshot ()) ~since:before in
  check_int "give-up counted" 1 d.Obs.Counters.retry_gave_up

(* ------------------------------------------------------------------ *)
(* checkpoint discard accounting (regression: discards were invisible
   outside stderr) *)

let with_tmp_dir f =
  let dir = Filename.temp_file "stlb-test-obs-ckpt" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let test_checkpoint_discards_are_counted () =
  with_tmp_dir (fun dir ->
      let t = Harness.Checkpoint.open_dir dir in
      let before = Obs.Counters.snapshot () in
      Harness.Checkpoint.store t ~name:"exp1" ~output:"a table\n";
      check "valid entry replays" true
        (Harness.Checkpoint.lookup t ~name:"exp1" <> None);
      (* corrupt the payload so the checksum disagrees *)
      let file = Filename.concat dir "exp1.json" in
      let contents = In_channel.with_open_bin file In_channel.input_all in
      let corrupted =
        String.map (fun c -> if c = 'a' then 'b' else c) contents
      in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc corrupted);
      check "corrupt entry discarded" true
        (Harness.Checkpoint.lookup t ~name:"exp1" = None);
      let h = Harness.Checkpoint.health t in
      check_int "stored counted" 1 h.Harness.Checkpoint.entries_stored;
      check_int "replay counted" 1 h.Harness.Checkpoint.entries_replayed;
      check_int "discard counted" 1 h.Harness.Checkpoint.entries_discarded;
      let d = Obs.Counters.diff (Obs.Counters.snapshot ()) ~since:before in
      check_int "discard in global counters" 1
        d.Obs.Counters.checkpoint_discarded;
      check_int "store in global counters" 1 d.Obs.Counters.checkpoint_stored)

(* ------------------------------------------------------------------ *)
(* trace sink mechanics *)

let test_trace_emission_and_escaping () =
  let path = Filename.temp_file "stlb-test-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t = Obs.Trace.open_file path in
      Obs.Trace.emit t ~event:"demo"
        [
          ("s", Obs.Trace.String "a\"b\\c\nd");
          ("i", Obs.Trace.Int (-3));
          ("b", Obs.Trace.Bool true);
        ];
      Obs.Trace.close t;
      Alcotest.(check string)
        "escaped JSONL line"
        "{\"event\":\"demo\",\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,\"b\":true}\n"
        (In_channel.with_open_bin path In_channel.input_all))

let test_no_sink_is_silent () =
  (* emit_current without a sink must be a no-op, not a crash *)
  check "no sink installed" true (Obs.Trace.current () = None);
  Obs.Trace.emit_current ~event:"dropped" [];
  check "still no sink" true (Obs.Trace.current () = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "recorder",
        [
          Alcotest.test_case "exact counts" `Quick test_recorder_exact_counts;
          Alcotest.test_case "future tapes instrumented" `Quick
            test_recorder_observes_future_tapes;
          Alcotest.test_case "sort ledger matches report" `Quick
            test_sort_ledger_matches_report;
          QCheck_alcotest.to_alcotest prop_sort_is_sorted_permutation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_fingerprint_accepts_equal_multisets;
          QCheck_alcotest.to_alcotest prop_bertrand_prime_in_range;
        ] );
      ( "audit",
        [
          Alcotest.test_case "fingerprint passes Thm 8(a)" `Slow
            test_fingerprint_audit_passes;
          Alcotest.test_case "merge sort passes Cor 7" `Slow
            test_mergesort_audit_passes;
          Alcotest.test_case "NST verifier passes Thm 8(b)" `Slow
            test_nst_audit_passes;
          Alcotest.test_case "over-budget machine rejected" `Quick
            test_audit_rejects_overbudget_machine;
          Alcotest.test_case "wrong spec rejected" `Quick
            test_wrong_spec_rejects_decider;
          Alcotest.test_case "allowance = 3x extsort bound" `Quick
            test_mergesort_allowance_is_3x_extsort_bound;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pool counters invariant under -j" `Slow
            test_pool_counters_worker_count_invariant;
          Alcotest.test_case "ledgers identical across runs" `Quick
            test_ledgers_identical_across_runs;
          Alcotest.test_case "traces identical for -j 1/2/4" `Slow
            test_traces_identical_across_worker_counts;
        ] );
      ( "counters",
        [
          Alcotest.test_case "retry attempts and give-ups" `Quick
            test_retry_counters;
          Alcotest.test_case "checkpoint discards counted" `Quick
            test_checkpoint_discards_are_counted;
        ] );
      ( "trace",
        [
          Alcotest.test_case "emission and escaping" `Quick
            test_trace_emission_and_escaping;
          Alcotest.test_case "no sink is silent" `Quick test_no_sink_is_silent;
        ] );
    ]
