(* Tests for nondeterministic list machines: the Definition 24 step
   semantics (including the Figure 2 example transition), skeletons
   (Definition 28), compared positions (Definition 33), the bounds of
   Lemmas 30/31, and the concrete CHECK-phi machines. *)

module Nlm = Listmachine.Nlm
module Skeleton = Listmachine.Skeleton
module Bounds = Listmachine.Lm_bounds
module Plan = Listmachine.Plan
module Machines = Listmachine.Machines
module G = Problems.Generators
module B = Util.Bitstring
module P = Util.Permutation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_movement dir move = { Nlm.dir; move }

(* a machine shell used for manual stepping *)
let shell ~lists ~input_length ~alpha =
  Nlm.make ~name:"shell" ~lists ~input_length ~num_choices:1 ~state_count:4
    ~initial:0
    ~is_final:(fun s -> s >= 2)
    ~is_accepting:(fun s -> s = 2)
    ~alpha

(* ------------------------------------------------------------------ *)
(* Step semantics *)

let test_initial_config () =
  let m = shell ~lists:3 ~input_length:4 ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
      { Nlm.next_state = 2; movements = [||] })
  in
  let c = Nlm.initial_config m in
  check_int "list1 cells" 4 (Array.length c.Nlm.contents.(0));
  check_int "list2 cells" 1 (Array.length c.Nlm.contents.(1));
  Alcotest.(check (list int)) "cell 1 holds input 1" [ 1 ]
    (Nlm.cell_inputs c.Nlm.contents.(0).(0));
  check "aux empty" true
    (Nlm.cell_equal c.Nlm.contents.(1).(0) (Nlm.cell_of_syms [ Nlm.Open; Nlm.Close ]));
  Alcotest.(check (array int)) "positions" [| 1; 1; 1 |] c.Nlm.pos;
  Alcotest.(check (array int)) "directions" [| 1; 1; 1 |] c.Nlm.head_dir

let figure2_config () =
  (* lists (x1..x5), (y1..y5), (z1..z5), heads on x4, y2, z3; list 1's
     head arrives moving left, the others moving right *)
  let cell tag = Nlm.cell_of_syms [ Nlm.St tag ] in
  {
    Nlm.state = 0;
    pos = [| 4; 2; 3 |];
    head_dir = [| -1; 1; 1 |];
    contents =
      [|
        Array.init 5 (fun i -> cell (10 + i));
        Array.init 5 (fun i -> cell (20 + i));
        Array.init 5 (fun i -> cell (30 + i));
      |];
    revs = [| 0; 0; 0 |];
    ids = [| [| 1; 2; 3; 4; 5 |]; [| 6; 7; 8; 9; 10 |]; [| 11; 12; 13; 14; 15 |] |];
    next_id = 16;
  }

let test_figure2_transition () =
  (* the Figure 2 example: (a, x4, y2, z3, c) ->
     (b, (-1,false), (+1,true), (+1,false)) *)
  let m =
    shell ~lists:3 ~input_length:0
      ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
        {
          Nlm.next_state = 1;
          movements = [| mk_movement (-1) false; mk_movement 1 true; mk_movement 1 false |];
        })
  in
  let c = figure2_config () in
  let c', moves = Nlm.step m ~values:[||] c ~choice:0 in
  let w =
    Nlm.cell_of_syms
      ([ Nlm.St 0 ]
      @ [ Nlm.Open; Nlm.St 13; Nlm.Close ]   (* x4 *)
      @ [ Nlm.Open; Nlm.St 21; Nlm.Close ]   (* y2 *)
      @ [ Nlm.Open; Nlm.St 32; Nlm.Close ]   (* z3 *)
      @ [ Nlm.Open; Nlm.Ch 0; Nlm.Close ])
  in
  (* list 1: w spliced between x4 and x5, head still on x4 *)
  check_int "list1 grew" 6 (Array.length c'.Nlm.contents.(0));
  check "w after x4" true (Nlm.cell_equal c'.Nlm.contents.(0).(4) w);
  check_int "head1 on x4" 4 c'.Nlm.pos.(0);
  (* list 2: y2 overwritten by w, head moved to y3 *)
  check_int "list2 same size" 5 (Array.length c'.Nlm.contents.(1));
  check "y2 overwritten" true (Nlm.cell_equal c'.Nlm.contents.(1).(1) w);
  check_int "head2 on y3" 3 c'.Nlm.pos.(1);
  (* list 3: w spliced before z3, head still on z3 *)
  check_int "list3 grew" 6 (Array.length c'.Nlm.contents.(2));
  check "w before z3" true (Nlm.cell_equal c'.Nlm.contents.(2).(2) w);
  check "z3 intact" true
    (Nlm.cell_equal c'.Nlm.contents.(2).(3) (Nlm.cell_of_syms [ Nlm.St 32 ]));
  check_int "head3 on z3 (shifted)" 4 c'.Nlm.pos.(2);
  (* cell moves: only list 2's head changed cell *)
  Alcotest.(check (array int)) "cell moves" [| 0; 1; 0 |] moves;
  (* no direction changes in this transition *)
  Alcotest.(check (array int)) "revs" [| 0; 0; 0 |] c'.Nlm.revs

let test_state_only_step () =
  let m =
    shell ~lists:2 ~input_length:2
      ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
        { Nlm.next_state = 1; movements = [| mk_movement 1 false; mk_movement 1 false |] })
  in
  let c = Nlm.initial_config m in
  let c', moves = Nlm.step m ~values:[| "a"; "b" |] c ~choice:0 in
  check_int "state advanced" 1 c'.Nlm.state;
  check "contents untouched" true (c'.Nlm.contents = c.Nlm.contents);
  Alcotest.(check (array int)) "no moves" [| 0; 0 |] moves

let test_clamping () =
  (* moving left at position 1 is clamped to (dir, false): a turn-and-
     splice, not a fall off the end *)
  let m =
    shell ~lists:1 ~input_length:2
      ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
        { Nlm.next_state = 1; movements = [| mk_movement (-1) true |] })
  in
  let c = Nlm.initial_config m in
  let c', _ = Nlm.step m ~values:[| "a"; "b" |] c ~choice:0 in
  (* the clamped (-1, false) with old direction +1 splices before the
     head: the head stays on the original cell, now at index 2 *)
  check_int "head on old cell" 2 c'.Nlm.pos.(0);
  check_int "old cell id preserved" c.Nlm.ids.(0).(0) c'.Nlm.ids.(0).(1);
  check_int "reversal counted" 1 c'.Nlm.revs.(0);
  check_int "list grew by splice" 3 (Array.length c'.Nlm.contents.(0));
  check_int "direction flipped" (-1) c'.Nlm.head_dir.(0)

let test_reversal_counting_run () =
  (* two scripted turns -> 2 reversals, scans = 3 *)
  let p = Plan.create ~lists:2 ~input_length:4 () in
  Plan.advance p ~tau:1 ~dir:1;
  Plan.advance p ~tau:1 ~dir:1;
  Plan.advance p ~tau:1 ~dir:(-1);
  Plan.advance p ~tau:1 ~dir:1;
  let m = Plan.build p ~name:"zigzag" ~accept_at_end:true in
  let tr = Nlm.run m ~values:[| "a"; "b"; "c"; "d" |] ~choices:(fun _ -> 0) in
  check_int "2 reversals" 2 tr.Nlm.total_revs;
  check_int "3 scans" 3 (Nlm.scans tr);
  check "accepted" true tr.Nlm.accepted

let test_cell_components () =
  let m =
    shell ~lists:2 ~input_length:2
      ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
        { Nlm.next_state = 1; movements = [| mk_movement 1 true; mk_movement 1 false |] })
  in
  let c = Nlm.initial_config m in
  let c', _ = Nlm.step m ~values:[| "a"; "b" |] c ~choice:0 in
  (* the overwritten cell on list 1 is a = St 0, components [x1; x2], choice 0 *)
  match Nlm.cell_components c'.Nlm.contents.(0).(0) with
  | Some (a, [ x1; x2 ], ch) ->
      check_int "state" 0 a;
      Alcotest.(check (list int)) "x1 payload" [ 1 ] (Nlm.cell_inputs x1);
      check "x2 was aux" true
        (Nlm.cell_equal x2 (Nlm.cell_of_syms [ Nlm.Open; Nlm.Close ]));
      check_int "choice" 0 ch
  | Some _ | None -> Alcotest.fail "unparseable written cell"

let test_coin_machine () =
  let m = Machines.coin ~input_length:1 in
  let st = Random.State.make [| 19 |] in
  let p = Nlm.accept_probability st ~samples:3000 m ~values:[| "x" |] in
  check "about half" true (abs_float (p -. 0.5) < 0.05);
  (* exact enumeration gives exactly 1/2 *)
  Alcotest.(check (float 1e-12)) "exact 1/2" 0.5
    (Nlm.exact_probability m ~values:[| "x" |])

let test_exact_probability_deterministic () =
  (* a deterministic scripted machine has probability exactly 0 or 1 *)
  let p = Plan.create ~lists:2 ~input_length:2 () in
  Plan.advance p ~tau:1 ~dir:1;
  let m = Plan.build p ~name:"det" ~accept_at_end:true in
  Alcotest.(check (float 1e-12)) "prob 1" 1.0
    (Nlm.exact_probability m ~values:[| "a"; "b" |]);
  let m' = Plan.build p ~name:"det-rej" ~accept_at_end:false in
  Alcotest.(check (float 1e-12)) "prob 0" 0.0
    (Nlm.exact_probability m' ~values:[| "a"; "b" |])

let test_blind_machines () =
  let acc = Machines.blind ~input_length:2 ~accept:true in
  let rej = Machines.blind ~input_length:2 ~accept:false in
  let run m = (Nlm.run m ~values:[| "a"; "b" |] ~choices:(fun _ -> 0)).Nlm.accepted in
  check "blind accept" true (run acc);
  check "blind reject" false (run rej)

(* ------------------------------------------------------------------ *)
(* Skeletons *)

let space = G.Checkphi.default_space ~m:8 ~n:12
let phi = G.Checkphi.phi space

let values_of inst =
  Array.append (Problems.Instance.xs inst) (Problems.Instance.ys inst)

let test_skeleton_input_independent () =
  (* data-oblivious machine: same skeleton on every input *)
  let st = Random.State.make [| 20 |] in
  let m = Machines.staircase_checkphi ~space ~chains:2 ~optimistic:true in
  let sk inst =
    Skeleton.serialize
      (Skeleton.of_trace (Nlm.run m ~values:(values_of inst) ~choices:(fun _ -> 0)))
  in
  let yes = sk (G.Checkphi.yes st space) in
  let yes2 = sk (G.Checkphi.yes st space) in
  Alcotest.(check string) "same skeleton across accepted inputs" yes yes2

let test_compared_pairs_subset () =
  let st = Random.State.make [| 21 |] in
  let m = Machines.staircase_checkphi ~space ~chains:1 ~optimistic:true in
  let tr = Nlm.run m ~values:(values_of (G.Checkphi.yes st space)) ~choices:(fun _ -> 0) in
  let sk = Skeleton.of_trace tr in
  let compared = Skeleton.phi_compared_count sk ~m:8 ~phi in
  let uncompared = Skeleton.uncompared_phi_indices sk ~m:8 ~phi in
  check_int "partition" 8 (compared + List.length uncompared);
  check "chain 1 is not everything" true (compared < 8);
  (* compared is monotone in chains *)
  let m2 = Machines.staircase_checkphi ~space ~chains:3 ~optimistic:true in
  let tr2 = Nlm.run m2 ~values:(values_of (G.Checkphi.yes st space)) ~choices:(fun _ -> 0) in
  let c2 = Skeleton.phi_compared_count (Skeleton.of_trace tr2) ~m:8 ~phi in
  check "more chains, more compared" true (c2 >= compared);
  check_int "full coverage" 8 c2

let test_compared_symmetric () =
  let st = Random.State.make [| 22 |] in
  let m = Machines.staircase_checkphi ~space ~chains:2 ~optimistic:true in
  let tr = Nlm.run m ~values:(values_of (G.Checkphi.yes st space)) ~choices:(fun _ -> 0) in
  let sk = Skeleton.of_trace tr in
  List.iter
    (fun (i, j) ->
      check "symmetric" true (Skeleton.compared sk i j = Skeleton.compared sk j i))
    (Skeleton.compared_pairs sk)

let test_lemma38_bound () =
  (* compared phi-pairs <= t^{2r} * sortedness(phi) *)
  let st = Random.State.make [| 23 |] in
  List.iter
    (fun chains ->
      let m = Machines.staircase_checkphi ~space ~chains ~optimistic:true in
      let tr =
        Nlm.run m ~values:(values_of (G.Checkphi.yes st space)) ~choices:(fun _ -> 0)
      in
      let sk = Skeleton.of_trace tr in
      let compared = Skeleton.phi_compared_count sk ~m:8 ~phi in
      let r = tr.Nlm.total_revs in
      let t = 2 in
      let bound =
        float_of_int (P.sortedness phi) *. (float_of_int t ** float_of_int (2 * r))
      in
      check
        (Printf.sprintf "chains=%d: %d <= %.0f" chains compared bound)
        true
        (float_of_int compared <= bound))
    [ 1; 2; 3 ]

let test_replay_remark29 () =
  let st = Random.State.make [| 29 |] in
  let m = Machines.staircase_checkphi ~space ~chains:2 ~optimistic:true in
  let inst = G.Checkphi.yes st space in
  let values = values_of inst in
  let choices _ = 0 in
  let sk = Skeleton.of_trace (Nlm.run m ~values ~choices) in
  check "replays to itself" true (Skeleton.replays_to ~machine:m ~values ~choices sk);
  (* a different machine's skeleton does not replay *)
  let other = Machines.staircase_checkphi ~space ~chains:1 ~optimistic:true in
  let sk' = Skeleton.of_trace (Nlm.run other ~values ~choices) in
  check "different machine, different skeleton" false
    (Skeleton.replays_to ~machine:m ~values ~choices sk')

let test_monotone_partition () =
  check_int "sorted = 1 chain" 1 (Skeleton.monotone_partition_upper [ 1; 2; 3; 4 ]);
  check_int "reverse = 1 chain" 1 (Skeleton.monotone_partition_upper [ 4; 3; 2; 1 ]);
  check "zigzag needs few" true (Skeleton.monotone_partition_upper [ 1; 3; 2; 4 ] <= 2);
  check_int "empty" 0 (Skeleton.monotone_partition_upper [])

let test_monotone_partition_exact () =
  check_int "sorted" 1 (Skeleton.monotone_partition_exact [ 1; 2; 3; 4 ]);
  check_int "zigzag" 2 (Skeleton.monotone_partition_exact [ 1; 3; 2; 4 ]);
  check_int "empty" 0 (Skeleton.monotone_partition_exact []);
  (* needs 3: a sequence with no 2-chain cover *)
  check "exact <= greedy always" true
    (let st = Random.State.make [| 55 |] in
     List.for_all
       (fun _ ->
         let seq = List.init 10 (fun _ -> Random.State.int st 20) in
         Skeleton.monotone_partition_exact seq
         <= Skeleton.monotone_partition_upper seq)
       (List.init 50 Fun.id));
  try
    ignore (Skeleton.monotone_partition_exact (List.init 30 Fun.id));
    Alcotest.fail "guard did not fire"
  with Invalid_argument _ -> ()

let test_render () =
  let st = Random.State.make [| 56 |] in
  let m = Machines.staircase_checkphi ~space ~chains:1 ~optimistic:true in
  let tr = Nlm.run m ~values:(values_of (G.Checkphi.yes st space)) ~choices:(fun _ -> 0) in
  let cfg = Listmachine.Render.config_to_string tr.Nlm.configs.(0) in
  check "initial shows head marker" true
    (String.length cfg > 0
    && String.split_on_char '\n' cfg
       |> List.exists (fun l -> String.length l > 2 && l.[0] = 'l'));
  let pict = Listmachine.Render.trace_to_string ~max_steps:3 tr in
  check "trace mentions verdict" true
    (String.split_on_char '\n' pict
    |> List.exists (fun l ->
           List.exists (fun w -> w = "ACCEPTS" || w = "rejects")
             (String.split_on_char ' ' l)));
  let sk = Skeleton.of_trace tr in
  check "skeleton summary nonempty" true
    (String.length (Listmachine.Render.skeleton_summary sk) > 0);
  (* cell elision respects the width budget *)
  let final = tr.Nlm.configs.(Array.length tr.Nlm.configs - 1) in
  Array.iter
    (Array.iter (fun cell ->
         check "elided width" true
           (String.length (Listmachine.Render.cell_to_string ~max_width:20 cell) <= 22)))
    final.Nlm.contents

let test_merge_lemma_on_traces () =
  (* the position sequence on any list decomposes into at most t^r
     monotone subsequences (Lemma 37); the greedy partition is an upper
     bound on the optimum, so greedy <= t^r suffices *)
  let st = Random.State.make [| 24 |] in
  let m = Machines.staircase_checkphi ~space ~chains:3 ~optimistic:false in
  let tr = Nlm.run m ~values:(values_of (G.Checkphi.yes st space)) ~choices:(fun _ -> 0) in
  let final = tr.Nlm.configs.(Array.length tr.Nlm.configs - 1) in
  let r = tr.Nlm.total_revs and t = 2 in
  List.iter
    (fun tau ->
      let seq = Skeleton.list_position_sequence final tau in
      let parts = Skeleton.monotone_partition_upper seq in
      let bound = float_of_int t ** float_of_int r in
      check
        (Printf.sprintf "list %d: %d parts <= t^r=%.0f" tau parts bound)
        true
        (float_of_int parts <= bound))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Lemma 30/31 bounds on real traces *)

let test_bounds_hold () =
  let st = Random.State.make [| 25 |] in
  List.iter
    (fun chains ->
      let m = Machines.staircase_checkphi ~space ~chains ~optimistic:true in
      let tr =
        Nlm.run m ~values:(values_of (G.Checkphi.yes st space)) ~choices:(fun _ -> 0)
      in
      let r = tr.Nlm.total_revs in
      check
        (Printf.sprintf "bounds at chains=%d" chains)
        true
        (Bounds.check tr ~t:2 ~r ~m:16 ~k:m.Nlm.state_count))
    [ 1; 2; 3 ]

let test_bound_formulas () =
  check_int "list length bound" (3 * 3 * 4) (Bounds.total_list_length_bound ~t:2 ~r:2 ~m:4);
  check_int "cell size bound" (11 * 8) (Bounds.cell_size_bound ~t:2 ~r:3);
  check_int "run length bound" (5 + (5 * 27 * 4))
    (Bounds.run_length_bound ~k:5 ~t:2 ~r:2 ~m:4);
  check "skeleton bound positive" true
    (Bounds.log2_skeleton_count_bound ~m:4 ~k:11 ~t:2 ~r:1 > 0.0)

(* ------------------------------------------------------------------ *)
(* Staircase machine: full behaviour *)

let test_staircase_solves_checkphi () =
  let st = Random.State.make [| 26 |] in
  let needed = Machines.chains_needed ~space in
  let m = Machines.staircase_checkphi ~space ~chains:needed ~optimistic:false in
  for _ = 1 to 25 do
    let yes = G.Checkphi.yes st space in
    let no = G.Checkphi.no st space in
    let run i = (Nlm.run m ~values:(values_of i) ~choices:(fun _ -> 0)).Nlm.accepted in
    check "accepts yes" true (run yes);
    check "rejects no" false (run no)
  done

(* ------------------------------------------------------------------ *)
(* Random data-oblivious machines: model-level properties *)

let random_plan seed ~with_check =
  let st = Random.State.make [| seed |] in
  let m = 4 + Random.State.int st 3 in
  let p = Plan.create ~lists:2 ~input_length:m () in
  for _ = 1 to 12 + Random.State.int st 16 do
    match Random.State.int st 4 with
    | 0 -> Plan.pause p ()
    | _ -> (
        let tau = 1 + Random.State.int st 2 in
        let dir = if Random.State.bool st then 1 else -1 in
        try Plan.advance p ~tau ~dir with Invalid_argument _ -> Plan.pause p ())
  done;
  (if with_check then begin
     (* attach one honest check between two visible input positions *)
     let visible =
       Array.to_list (Plan.cells p)
       |> List.concat_map Nlm.cell_inputs
       |> List.sort_uniq Int.compare
     in
     match visible with
     | a :: b :: _ -> Plan.check_inputs_equal p ~eq:String.equal a b
     | [ _ ] | [] -> ()
   end);
  (m, Plan.build p ~name:(Printf.sprintf "random-plan-%d" seed) ~accept_at_end:true)

let values_for st m = Array.init m (fun _ -> string_of_int (Random.State.int st 4))

let prop_random_plans_obey_bounds =
  QCheck.Test.make ~name:"random oblivious machines obey Lemmas 30/31" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed + 7 |] in
      let m, machine = random_plan seed ~with_check:false in
      let tr = Nlm.run machine ~values:(values_for st m) ~choices:(fun _ -> 0) in
      Listmachine.Lm_bounds.check tr ~t:2 ~r:tr.Nlm.total_revs ~m
        ~k:machine.Nlm.state_count)

let prop_random_plans_skeleton_oblivious =
  QCheck.Test.make ~name:"random plans: skeleton independent of values" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed + 13 |] in
      let m, machine = random_plan seed ~with_check:false in
      let sk values =
        Skeleton.serialize
          (Skeleton.of_trace (Nlm.run machine ~values ~choices:(fun _ -> 0)))
      in
      sk (values_for st m) = sk (values_for st m))

let prop_view_run_matches_run =
  QCheck.Test.make ~name:"run_view agrees with run on random machines" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed + 41 |] in
      let m, machine = random_plan seed ~with_check:true in
      let values = values_for st m in
      let tr = Nlm.run machine ~values ~choices:(fun _ -> 0) in
      let vt = Nlm.run_view machine ~values ~choices:(fun _ -> 0) in
      let sk_full = Skeleton.of_trace tr in
      let sk_view = Skeleton.of_views vt in
      let last = tr.Nlm.configs.(Array.length tr.Nlm.configs - 1) in
      let final = vt.Nlm.final in
      tr.Nlm.accepted = vt.Nlm.vaccepted
      && tr.Nlm.total_revs = vt.Nlm.vtotal_revs
      && tr.Nlm.choices_used = vt.Nlm.vchoices_used
      && Skeleton.equal sk_full sk_view
      && Skeleton.hash sk_full = Skeleton.hash sk_view
      && last.Nlm.state = final.Nlm.state
      && last.Nlm.pos = final.Nlm.pos
      && last.Nlm.head_dir = final.Nlm.head_dir
      && last.Nlm.revs = final.Nlm.revs
      && last.Nlm.ids = final.Nlm.ids
      && Array.for_all2
           (fun a b -> Array.length a = Array.length b && Array.for_all2 Nlm.cell_equal a b)
           last.Nlm.contents final.Nlm.contents)

(* The linked-list pilot must report exactly what a real [Nlm.step]
   replay of the built script produces: same positions, directions,
   reversal totals, cell identities and list lengths. Cell contents are
   compared through their input-position sets — a plan-time forced
   write carries state 0 where the replay carries the step index, and
   the position set is precisely the abstraction plan-time checks are
   allowed to rely on. *)
let prop_plan_pilot_matches_replay =
  QCheck.Test.make ~name:"plan pilot agrees with an Nlm.step replay" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let m = 4 + Random.State.int st 3 in
      let p = Plan.create ~lists:2 ~input_length:m () in
      for _ = 1 to 12 + Random.State.int st 16 do
        match Random.State.int st 4 with
        | 0 -> Plan.pause p ()
        | _ -> (
            let tau = 1 + Random.State.int st 2 in
            let dir = if Random.State.bool st then 1 else -1 in
            try Plan.advance p ~tau ~dir with Invalid_argument _ -> Plan.pause p ())
      done;
      let machine = Plan.build p ~name:"pilot-parity" ~accept_at_end:true in
      let values = values_for st m in
      let tr = Nlm.run machine ~values ~choices:(fun _ -> 0) in
      let last = tr.Nlm.configs.(Array.length tr.Nlm.configs - 1) in
      let lists = Array.length last.Nlm.pos in
      last.Nlm.pos = Plan.positions p
      && last.Nlm.head_dir = Plan.dirs p
      && Array.fold_left ( + ) 0 last.Nlm.revs = Plan.reversals_planned p
      && List.for_all
           (fun tau ->
             let ids = last.Nlm.ids.(tau - 1) in
             Array.length ids = Plan.list_length p tau
             && Plan.id_at p ~tau = ids.((Plan.positions p).(tau - 1) - 1)
             && Array.for_all Fun.id
                  (Array.mapi
                     (fun i0 id -> Plan.id_at_index p ~tau ~index:(i0 + 1) = id)
                     ids))
           (List.init lists (fun t -> t + 1))
      && Array.for_all2
           (fun a b -> Nlm.cell_input_positions a = Nlm.cell_input_positions b)
           (Nlm.current_cells last) (Plan.cells p))

let prop_intern_matches_structural_equality =
  QCheck.Test.make
    ~name:"interned id equality coincides with structural skeleton equality"
    ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed + 57 |] in
      (* a few machines x a few value vectors: skeletons from the same
         machine are equal (value-oblivious), across machines almost
         never - both directions of the bijection get exercised *)
      let sks =
        List.concat_map
          (fun k ->
            let m, machine = random_plan (seed + k) ~with_check:false in
            List.init 3 (fun _ ->
                let values = values_for st m in
                Skeleton.of_views (Nlm.run_view machine ~values ~choices:(fun _ -> 0))))
          [ 0; 1; 2 ]
      in
      let tbl = Skeleton.Intern.create () in
      let ids = List.map (fun sk -> (fst (Skeleton.Intern.intern tbl sk), sk)) sks in
      List.for_all
        (fun (ida, a) ->
          List.for_all (fun (idb, b) -> (ida = idb) = Skeleton.equal a b) ids)
        ids)

let prop_intern_spill_matches_ram =
  QCheck.Test.make
    ~name:"spill-backed intern ids match the RAM table on the same stream"
    ~count:20
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed + 91 |] in
      (* the same interleaved stream of repeats and fresh classes, fed
         to both tiers; a 2-deep front forces the spill table through
         its bloom/slot-probe path on most lookups *)
      let sks =
        List.concat_map
          (fun k ->
            let m, machine = random_plan (seed + k) ~with_check:false in
            List.init 3 (fun _ ->
                let values = values_for st m in
                Skeleton.of_views (Nlm.run_view machine ~values ~choices:(fun _ -> 0))))
          [ 0; 1; 2; 0; 1 ]
      in
      let ram = Skeleton.Intern.create () in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "stlb-intern-prop-%d-%d" (Unix.getpid ()) seed)
      in
      let spill =
        Skeleton.Intern.create
          ~backend:
            (Skeleton.Intern.Spill
               {
                 spec = Tape.Device.file_spec ~block_bytes:4096 ~cache_blocks:4 dir;
                 recent = 2;
               })
          ()
      in
      let ids_agree =
        List.for_all
          (fun sk ->
            fst (Skeleton.Intern.intern ram sk)
            = fst (Skeleton.Intern.intern spill sk))
          sks
      in
      let counts_agree = Skeleton.Intern.count ram = Skeleton.Intern.count spill in
      Skeleton.Intern.close spill;
      ids_agree && counts_agree)

let prop_random_plans_composition_never_violated =
  QCheck.Test.make
    ~name:"composition lemma never violated on random honest machines" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed + 23 |] in
      let m, machine = random_plan seed ~with_check:true in
      if m < 2 then true
      else begin
        let v = values_for st m in
        let tr = Nlm.run machine ~values:v ~choices:(fun _ -> 0) in
        let sk = Skeleton.of_trace tr in
        (* pick any uncompared pair and a w differing only there *)
        let pairs =
          List.concat_map
            (fun i ->
              List.filter_map
                (fun j -> if i < j && not (Skeleton.compared sk i j) then Some (i, j) else None)
                (List.init m (fun k -> k + 1)))
            (List.init m (fun k -> k + 1))
        in
        match pairs with
        | [] -> true
        | (i, j) :: _ -> (
            let w = Array.copy v in
            w.(i - 1) <- v.(i - 1) ^ "x";
            w.(j - 1) <- v.(j - 1) ^ "y";
            match
              Stcore.Composition.check ~machine ~choices:(fun _ -> 0) ~v ~w ~i
                ~i':j ()
            with
            | Stcore.Composition.Holds | Stcore.Composition.Precondition_failed _ ->
                true
            | Stcore.Composition.Violated _ -> false)
      end)

let test_random_chain_machine () =
  let st = Random.State.make [| 27 |] in
  let machine = Machines.random_chain_checkphi ~space in
  check_int "one choice per chain" (Machines.chains_needed ~space)
    machine.Nlm.num_choices;
  for _ = 1 to 10 do
    (* yes-instances accept on every branch *)
    let yes = G.Checkphi.yes st space in
    Alcotest.(check (float 1e-9)) "yes prob 1" 1.0
      (Machines.dispatch_probability machine ~values:(values_of yes));
    (* no-instances keep a positive acceptance probability below 1:
       exactly the (1/2,0)-contract violation Theorem 6 predicts *)
    let no = G.Checkphi.no st space in
    let p = Machines.dispatch_probability machine ~values:(values_of no) in
    check "no-instance accepted on some branch" true (p > 0.0);
    check "but rejected on the covering branch" true (p < 1.0)
  done;
  (* each branch is cheap: O(1) reversals per run *)
  let yes = G.Checkphi.yes st space in
  for c = 0 to machine.Nlm.num_choices - 1 do
    let tr = Nlm.run machine ~values:(values_of yes) ~choices:(fun _ -> c) in
    check "cheap branch" true (Nlm.scans tr <= 8)
  done

let test_adversary_fools_random_chain () =
  let st = Random.State.make [| 28 |] in
  let machine = Machines.random_chain_checkphi ~space in
  match Stcore.Adversary.attack st ~space ~machine () with
  | Stcore.Adversary.Fooled _ as o ->
      check "verified" true (Stcore.Adversary.verify_fooled ~space ~machine o)
  | Stcore.Adversary.Not_fooled { reason; _ } ->
      Alcotest.fail ("randomized machine not fooled: " ^ reason)
  | Stcore.Adversary.Contract_violated _ ->
      Alcotest.fail "randomized machine accepts all yes-instances"

let test_chain_partition_properties () =
  List.iter
    (fun lg ->
      let mm = 1 lsl lg in
      let ph = P.reverse_binary mm in
      let chains = Machines.chain_partition ph in
      (* covers every pair exactly once *)
      let all = List.concat chains in
      check_int "covers all" mm (List.length all);
      check_int "no duplicates" mm
        (List.length (List.sort_uniq compare (List.map fst all)));
      List.iter
        (fun chain ->
          (* first coordinates ascending; second monotone *)
          let rec mono_fst = function
            | (a, _) :: ((b, _) :: _ as tl) -> a < b && mono_fst tl
            | [ _ ] | [] -> true
          in
          check "i ascending" true (mono_fst chain);
          let seconds = List.map snd chain in
          let incr_ = List.sort Int.compare seconds = seconds in
          let decr = List.sort (fun a b -> Int.compare b a) seconds = seconds in
          check "monotone j" true (incr_ || decr))
        chains)
    [ 2; 3; 4; 5 ]

let () =
  Alcotest.run "listmachine"
    [
      ( "semantics",
        [
          Alcotest.test_case "initial config" `Quick test_initial_config;
          Alcotest.test_case "figure 2 transition" `Quick test_figure2_transition;
          Alcotest.test_case "state-only step" `Quick test_state_only_step;
          Alcotest.test_case "clamping" `Quick test_clamping;
          Alcotest.test_case "reversal counting" `Quick test_reversal_counting_run;
          Alcotest.test_case "cell components" `Quick test_cell_components;
          Alcotest.test_case "coin machine" `Quick test_coin_machine;
          Alcotest.test_case "exact probability" `Quick
            test_exact_probability_deterministic;
          Alcotest.test_case "blind machines" `Quick test_blind_machines;
        ] );
      ( "skeletons",
        [
          Alcotest.test_case "input independence" `Quick test_skeleton_input_independent;
          Alcotest.test_case "compared pairs" `Quick test_compared_pairs_subset;
          Alcotest.test_case "compared symmetric" `Quick test_compared_symmetric;
          Alcotest.test_case "Lemma 38 bound" `Quick test_lemma38_bound;
          Alcotest.test_case "replay (Remark 29)" `Quick test_replay_remark29;
          Alcotest.test_case "monotone partition" `Quick test_monotone_partition;
          Alcotest.test_case "exact monotone partition" `Quick
            test_monotone_partition_exact;
          Alcotest.test_case "rendering" `Quick test_render;
          Alcotest.test_case "merge lemma on traces" `Quick test_merge_lemma_on_traces;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "Lemma 30/31 on traces" `Quick test_bounds_hold;
          Alcotest.test_case "formulas" `Quick test_bound_formulas;
        ] );
      ( "machines",
        [
          Alcotest.test_case "staircase solves CHECK-phi" `Quick
            test_staircase_solves_checkphi;
          Alcotest.test_case "random-chain machine" `Quick test_random_chain_machine;
          Alcotest.test_case "adversary fools random-chain" `Quick
            test_adversary_fools_random_chain;
          Alcotest.test_case "chain partition" `Quick test_chain_partition_properties;
        ] );
      ( "random machines",
        [
          QCheck_alcotest.to_alcotest prop_random_plans_obey_bounds;
          QCheck_alcotest.to_alcotest prop_random_plans_skeleton_oblivious;
          QCheck_alcotest.to_alcotest prop_view_run_matches_run;
          QCheck_alcotest.to_alcotest prop_plan_pilot_matches_replay;
          QCheck_alcotest.to_alcotest prop_intern_spill_matches_ram;
          QCheck_alcotest.to_alcotest prop_intern_matches_structural_equality;
          QCheck_alcotest.to_alcotest prop_random_plans_composition_never_violated;
        ] );
    ]
