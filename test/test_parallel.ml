(* Tests for the Domain-based Monte Carlo pool: worker-count
   determinism (the load-bearing property - every experiment table must
   be bit-identical under -j 1 / -j 2 / -j 4), clean exception
   propagation, and bit-for-bit parity of the parallel fingerprint
   estimators with their sequential (1-domain) path. *)

module Pool = Parallel.Pool
module Rng = Parallel.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pools () = List.map (fun d -> Pool.create ~domains:d ()) [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* seed splitting *)

let test_rng_reproducible () =
  List.iter
    (fun (seed, index) ->
      check "same (seed, index) -> same words" true
        (Rng.derive ~seed ~index = Rng.derive ~seed ~index);
      let a = Random.State.full_int (Rng.state ~seed ~index) max_int in
      let b = Random.State.full_int (Rng.state ~seed ~index) max_int in
      check_int "same (seed, index) -> same stream" a b)
    [ (0, 0); (42, 0); (42, 17); (min_int, 3); (max_int, 1024) ]

let test_rng_streams_distinct () =
  (* neighbouring chunks and neighbouring seeds must not share streams *)
  let draw seed index = Random.State.full_int (Rng.state ~seed ~index) max_int in
  let all =
    List.concat_map
      (fun seed -> List.map (fun index -> draw seed index) [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 0xC0FFEE ]
  in
  let distinct = List.sort_uniq Int.compare all in
  check_int "16 (seed, chunk) pairs -> 16 streams" (List.length all)
    (List.length distinct)

(* ------------------------------------------------------------------ *)
(* (a) worker-count determinism *)

let test_map_chunks_deterministic () =
  let reference = Array.init 101 (fun i -> i * i) in
  List.iter
    (fun pool ->
      let got = Pool.map_chunks pool ~chunks:101 (fun i -> i * i) in
      check
        (Printf.sprintf "map_chunks at %d domains" (Pool.domains pool))
        true
        (got = reference))
    (pools ())

let test_monte_carlo_deterministic () =
  (* 103 trials is deliberately not a multiple of the chunk size *)
  let run pool =
    Pool.monte_carlo pool ~trials:103 ~seed:0xBEEF (fun st ->
        Random.State.full_int st 1_000_000)
  in
  let reference = run (Pool.create ~domains:1 ()) in
  check_int "one result per trial" 103 (Array.length reference);
  List.iter
    (fun pool ->
      check
        (Printf.sprintf "monte_carlo at %d domains" (Pool.domains pool))
        true
        (run pool = reference))
    (pools ())

let test_monte_carlo_fold_order () =
  (* combine is order-sensitive; folding must follow trial order *)
  let run pool =
    Pool.monte_carlo_fold pool ~trials:80 ~seed:7 ~init:[]
      ~combine:(fun acc r -> r :: acc)
      (fun st -> Random.State.full_int st 1000)
  in
  let reference = run (Pool.create ~domains:1 ()) in
  List.iter
    (fun pool -> check "fold order" true (run pool = reference))
    (pools ())

let test_count_matches_array () =
  List.iter
    (fun pool ->
      let hits =
        Pool.monte_carlo pool ~trials:64 ~seed:3 (fun st -> Random.State.bool st)
      in
      let expected = Array.fold_left (fun a h -> if h then a + 1 else a) 0 hits in
      check_int "count = fold of per-trial results" expected
        (Pool.monte_carlo_count pool ~trials:64 ~seed:3 (fun st ->
             Random.State.bool st)))
    (pools ())

(* ------------------------------------------------------------------ *)
(* (b) exception propagation and clean shutdown *)

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun pool ->
      let raised =
        try
          ignore
            (Pool.map_chunks pool ~chunks:32 (fun i ->
                 if i = 13 then raise (Boom i) else i));
          false
        with Boom 13 -> true
      in
      check
        (Printf.sprintf "Boom surfaces at %d domains" (Pool.domains pool))
        true raised)
    (pools ())

let test_pool_survives_failure () =
  (* after a raising job every domain has been joined; the same pool
     value must keep working *)
  let pool = Pool.create ~domains:4 () in
  (try ignore (Pool.monte_carlo pool ~trials:60 ~seed:1 (fun _ -> raise Exit))
   with Exit -> ());
  let again = Pool.monte_carlo_count pool ~trials:60 ~seed:1 (fun st ->
      Random.State.bool st)
  in
  check "pool usable after failure" true (again >= 0 && again <= 60)

(* ------------------------------------------------------------------ *)
(* (c) fingerprint estimators: parallel == sequential, bit for bit *)

let test_false_positive_rate_parity () =
  let rate pool =
    Fingerprint.false_positive_rate ~pool
      (Random.State.make [| 99 |])
      ~m:8 ~n:10 ~trials:120
  in
  let seq = rate (Pool.create ~domains:1 ()) in
  List.iter
    (fun pool ->
      check
        (Printf.sprintf "false_positive_rate at %d domains" (Pool.domains pool))
        true
        (rate pool = seq))
    (pools ())

let test_residue_collision_rate_parity () =
  let rate pool =
    Fingerprint.residue_collision_rate ~pool
      (Random.State.make [| 7 |])
      ~m:4 ~n:8 ~trials:120
  in
  let seq = rate (Pool.create ~domains:1 ()) in
  List.iter
    (fun pool ->
      check
        (Printf.sprintf "residue_collision_rate at %d domains"
           (Pool.domains pool))
        true
        (rate pool = seq))
    (pools ())

(* ------------------------------------------------------------------ *)

let test_default_domains_positive () =
  check "default >= 1" true (Pool.default_domains () >= 1);
  Pool.set_default_domains 3;
  check_int "-j override" 3 (Pool.default_domains ());
  Pool.set_default_domains 0;
  check_int "override clamped to 1" 1 (Pool.default_domains ())

let () =
  Alcotest.run "parallel"
    [
      ( "rng",
        [
          Alcotest.test_case "reproducible" `Quick test_rng_reproducible;
          Alcotest.test_case "streams distinct" `Quick test_rng_streams_distinct;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "map_chunks" `Quick test_map_chunks_deterministic;
          Alcotest.test_case "monte_carlo" `Quick test_monte_carlo_deterministic;
          Alcotest.test_case "fold order" `Quick test_monte_carlo_fold_order;
          Alcotest.test_case "count" `Quick test_count_matches_array;
        ] );
      ( "failure",
        [
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "pool survives" `Quick test_pool_survives_failure;
        ] );
      ( "fingerprint parity",
        [
          Alcotest.test_case "false_positive_rate" `Quick
            test_false_positive_rate_parity;
          Alcotest.test_case "residue_collision_rate" `Quick
            test_residue_collision_rate_parity;
        ] );
      ( "config",
        [
          Alcotest.test_case "default domains" `Quick
            test_default_domains_positive;
        ] );
    ]
