(* Tests for the fault-injection layer: plan determinism (including
   across worker counts - the load-bearing property), corruption
   detection by the deciders, the retry combinators, the pool watchdog,
   the fail_fast escape hatch, and the checkpoint journal. *)

module D = Problems.Decide
module G = Problems.Generators
module Pool = Parallel.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pools () = List.map (fun d -> Pool.create ~domains:d ()) [ 1; 2; 4 ]

let rates_flip p = { Faults.zero with Faults.bit_flip = p }

(* ------------------------------------------------------------------ *)
(* plan determinism *)

let test_plan_derivation_deterministic () =
  let plan = Faults.Plan.create ~seed:42 ~rates:(rates_flip 0.1) in
  check "same (seed, name) -> same words" true
    (Faults.Plan.derive plan ~name:"xs" = Faults.Plan.derive plan ~name:"xs");
  check "different names -> different words" true
    (Faults.Plan.derive plan ~name:"xs" <> Faults.Plan.derive plan ~name:"ys");
  let plan' = Faults.Plan.create ~seed:43 ~rates:(rates_flip 0.1) in
  check "different seeds -> different words" true
    (Faults.Plan.derive plan ~name:"xs" <> Faults.Plan.derive plan' ~name:"xs")

let test_plan_rejects_bad_rates () =
  Alcotest.check_raises "rate > 1 rejected"
    (Invalid_argument "Faults: bit_flip rate 1.5 outside [0,1]") (fun () ->
      ignore (Faults.Plan.create ~seed:0 ~rates:(rates_flip 1.5)))

(* Zero-rate plans draw no randomness, so attaching one is
   observationally identical to attaching nothing. *)
let test_zero_rate_plan_is_identity () =
  let st () = Random.State.make [| 7 |] in
  let inst = G.yes_instance (st ()) D.Multiset_equality ~m:8 ~n:8 in
  let plain_ok, plain_rep = Extsort.multiset_equality inst in
  let plan = Faults.Plan.create ~seed:99 ~rates:Faults.zero in
  let zero_ok, zero_rep = Extsort.multiset_equality ~faults:plan inst in
  check "verdict unchanged" true (plain_ok = zero_ok);
  check "report unchanged" true (plain_rep = { zero_rep with faults = 0 });
  check_int "no faults injected" 0 zero_rep.Extsort.faults;
  let fp_plain = Fingerprint.run (st ()) inst in
  let fp_zero = Fingerprint.run ~faults:plan (st ()) inst in
  check "fingerprint run unchanged under zero plan" true
    (fp_plain
    = (let ok, rep, params = fp_zero in
       (ok, { rep with Fingerprint.faults = 0 }, params)))

(* ------------------------------------------------------------------ *)
(* corruption detection *)

let test_extsort_detects_corruption () =
  let st = Random.State.make [| 11 |] in
  let inst = G.yes_instance st D.Multiset_equality ~m:16 ~n:10 in
  let detections = ref 0 and faulty = ref 0 in
  for seed = 0 to 19 do
    let plan = Faults.Plan.create ~seed ~rates:(rates_flip 0.02) in
    let ok, rep = Extsort.multiset_equality ~faults:plan inst in
    if rep.Extsort.faults > 0 then begin
      incr faulty;
      if not ok then incr detections
    end
  done;
  check "most plans inject at least one fault" true (!faulty >= 15);
  check "corrupted yes-instances get flagged NO" true (!detections >= !faulty / 2)

let test_fingerprint_detects_corruption () =
  let inst =
    G.yes_instance (Random.State.make [| 5 |]) D.Multiset_equality ~m:16 ~n:10
  in
  let detections = ref 0 and faulty = ref 0 in
  for seed = 0 to 19 do
    let plan = Faults.Plan.create ~seed ~rates:(rates_flip 0.02) in
    let st = Random.State.make [| 1234 |] in
    let ok, rep, _ = Fingerprint.run ~faults:plan st inst in
    if rep.Fingerprint.faults > 0 then begin
      incr faulty;
      if not ok then incr detections
    end
  done;
  check "most plans inject at least one fault" true (!faulty >= 15);
  check "the parity check catches corrupted runs" true (!detections > 0)

(* The whole point of name-keyed fault streams: a faulty Monte Carlo
   sweep is bit-identical for every worker count. *)
let test_faulty_runs_deterministic_across_pools () =
  let run pool =
    Pool.monte_carlo pool ~trials:60 ~seed:0xFA17 (fun st ->
        let inst = G.yes_instance st D.Multiset_equality ~m:8 ~n:8 in
        let plan =
          Faults.Plan.create
            ~seed:(Random.State.full_int st (1 lsl 30))
            ~rates:{ (rates_flip 0.01) with Faults.torn_write = 0.01 }
        in
        let ok, rep = Extsort.multiset_equality ~faults:plan inst in
        (ok, rep.Extsort.faults, rep.Extsort.scans))
  in
  let reference = run (Pool.create ~domains:1 ()) in
  List.iter
    (fun pool ->
      check
        (Printf.sprintf "faulty sweep at %d domains" (Pool.domains pool))
        true
        (run pool = reference))
    (pools ())

(* ------------------------------------------------------------------ *)
(* retry combinators *)

let test_retry_succeeds_after_transients () =
  let attempts = ref 0 in
  let v =
    Faults.Retry.run
      ~policy:{ Faults.Retry.default with attempts = 5 }
      (fun () ->
        incr attempts;
        if !attempts < 3 then raise (Faults.Transient_io "flaky");
        "done")
  in
  Alcotest.(check string) "eventually returns" "done" v;
  check_int "two failures + one success" 3 !attempts

let test_retry_gives_up_after_k () =
  let attempts = ref 0 and retries = ref 0 in
  (match
     Faults.Retry.run
       ~policy:{ Faults.Retry.default with attempts = 4 }
       ~label:"always-failing"
       ~on_retry:(fun ~attempt:_ _ -> incr retries)
       (fun () ->
         incr attempts;
         raise (Faults.Transient_io "down"))
   with
  | () -> Alcotest.fail "expected Gave_up"
  | exception Faults.Retry.Gave_up { label; attempts = k; last } ->
      Alcotest.(check string) "label" "always-failing" label;
      check_int "gave up after the policy's attempts" 4 k;
      check "last transient preserved" true
        (match last with Faults.Transient_io _ -> true | _ -> false));
  check_int "ran exactly K times" 4 !attempts;
  check_int "on_retry before each re-attempt" 3 !retries

let test_retry_fatal_propagates_immediately () =
  let attempts = ref 0 in
  Alcotest.check_raises "fatal exception not retried"
    (Invalid_argument "broken") (fun () ->
      Faults.Retry.run (fun () ->
          incr attempts;
          raise (Invalid_argument "broken")));
  check_int "single attempt" 1 !attempts

let test_backoff_deterministic () =
  let policy = { Faults.Retry.default with base_backoff_s = 0.5 } in
  let b attempt = Faults.Retry.backoff policy ~seed:7 ~attempt in
  check "same (seed, attempt) -> same backoff" true (b 1 = b 1);
  check "grows with attempt" true (b 3 > b 1);
  check "zero base disables backoff" true
    (Faults.Retry.backoff Faults.Retry.default ~seed:7 ~attempt:1 = 0.0)

(* ------------------------------------------------------------------ *)
(* pool watchdog *)

let watchdog_pool ?(deadline = None) ~domains ~retries () =
  Pool.create ~domains
    ~watchdog:
      {
        Pool.max_chunk_retries = retries;
        chunk_deadline_s = deadline;
        retryable = (function Faults.Transient_io _ -> true | _ -> false);
      }
    ()

(* A chunk that dies on its first attempt is re-run with the same index
   (hence the same chunk seed) and must land the same result a clean
   pool computes. *)
let test_watchdog_retries_killed_chunks () =
  let reference =
    Pool.monte_carlo (Pool.create ~domains:1 ()) ~trials:100 ~seed:0xDEAD
      (fun st -> Random.State.full_int st 1_000_000)
  in
  List.iter
    (fun domains ->
      let pool = watchdog_pool ~domains ~retries:2 () in
      let first_attempts = Array.init 4 (fun _ -> Atomic.make true) in
      let got =
        Pool.monte_carlo pool ~trials:100 ~seed:0xDEAD (fun st ->
            let v = Random.State.full_int st 1_000_000 in
            (* kill chunks 0 and 2 on their first visit, mid-chunk *)
            let chunk = v mod 4 in
            if
              chunk mod 2 = 0
              && Atomic.compare_and_set first_attempts.(chunk) true false
            then raise (Faults.Transient_io "chunk killed");
            v)
      in
      check
        (Printf.sprintf "retried chunks reproduce the clean run at -j %d"
           domains)
        true (got = reference);
      check "watchdog reports the retries" true
        ((Pool.health pool).Pool.chunks_retried >= 1))
    [ 1; 2; 4 ]

let test_watchdog_exhausts_retries () =
  let pool = watchdog_pool ~domains:1 ~retries:2 () in
  Alcotest.check_raises "persistent fault propagates after retries"
    (Faults.Transient_io "stuck") (fun () ->
      Pool.map_chunks pool ~chunks:1 (fun _ ->
          raise (Faults.Transient_io "stuck"))
      |> ignore);
  check_int "all retries spent" 2 (Pool.health pool).Pool.chunks_retried

let test_watchdog_deadline_flags_overruns () =
  (* a negative deadline flags every chunk, deterministically *)
  let pool = watchdog_pool ~deadline:(Some (-1.0)) ~domains:2 ~retries:0 () in
  let got = Pool.map_chunks pool ~chunks:6 (fun i -> i * i) in
  check "results unaffected" true (got = Array.init 6 (fun i -> i * i));
  check_int "every chunk flagged as overrunning" 6
    (Pool.health pool).Pool.deadline_overruns;
  Pool.reset_health pool;
  check_int "reset clears the counters" 0
    (Pool.health pool).Pool.deadline_overruns

(* ------------------------------------------------------------------ *)
(* fail_fast escape hatch *)

let test_fail_fast_off_counts_overruns () =
  let budget = { Tape.Group.max_scans = Some 1; max_internal = None } in
  let g = Tape.Group.create ~fail_fast:false ~budget () in
  let t = Tape.Group.tape_of_list g ~name:"t" ~blank:'_' [ 'a'; 'b'; 'c' ] in
  Tape.move t Tape.Right;
  Tape.move t Tape.Left;
  Tape.move t Tape.Right;
  check "no Budget_exceeded raised" true (Tape.Group.scans g > 1);
  check "overruns recorded" true (Tape.Group.budget_overruns g > 0);
  let r = Tape.Group.report g in
  check "report surfaces the overruns" true (r.Tape.Group.budget_overruns > 0)

let test_fail_fast_on_still_raises () =
  let budget = { Tape.Group.max_scans = Some 1; max_internal = None } in
  let g = Tape.Group.create ~budget () in
  let t = Tape.Group.tape_of_list g ~name:"t" ~blank:'_' [ 'a'; 'b' ] in
  Tape.move t Tape.Right;
  check "raises on the reversal" true
    (match Tape.move t Tape.Left with
    | () -> false
    | exception Tape.Budget_exceeded _ -> true)

(* ------------------------------------------------------------------ *)
(* checkpoint journal *)

let with_tmp_dir f =
  let dir = Filename.temp_file "stlb-test-ckpt" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let test_checkpoint_roundtrip () =
  with_tmp_dir (fun dir ->
      let t = Harness.Checkpoint.open_dir dir in
      let output = "E99 table\n  row 1\n  row 2\n" in
      check "missing entry" true (Harness.Checkpoint.lookup t ~name:"exp99" = None);
      Harness.Checkpoint.store t ~name:"exp99" ~output;
      check "stored entry replays verbatim" true
        (Harness.Checkpoint.lookup t ~name:"exp99" = Some output);
      (* non-ASCII and JSON specials must round-trip exactly *)
      let tricky = "quote \" backslash \\ tab \t\nbell \007 end" in
      Harness.Checkpoint.store t ~name:"tricky" ~output:tricky;
      check "escaping round-trips" true
        (Harness.Checkpoint.lookup t ~name:"tricky" = Some tricky))

let test_checkpoint_detects_corruption () =
  with_tmp_dir (fun dir ->
      let t = Harness.Checkpoint.open_dir dir in
      Harness.Checkpoint.store t ~name:"exp1" ~output:"some table\n";
      let file = Filename.concat dir "exp1.json" in
      let contents = In_channel.with_open_bin file In_channel.input_all in
      let corrupted =
        String.map (fun c -> if c = 't' then 'x' else c) contents
      in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc corrupted);
      check "corrupt journal discarded" true
        (Harness.Checkpoint.lookup t ~name:"exp1" = None);
      check "corrupt file removed" true (not (Sys.file_exists file)))

let test_crc32_known_values () =
  (* the standard CRC-32 check value *)
  check_int "crc32(123456789)" 0xCBF43926
    (Harness.Checkpoint.crc32 "123456789");
  check_int "crc32 of empty" 0 (Harness.Checkpoint.crc32 "")

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "derivation deterministic" `Quick
            test_plan_derivation_deterministic;
          Alcotest.test_case "bad rates rejected" `Quick
            test_plan_rejects_bad_rates;
          Alcotest.test_case "zero-rate plan is identity" `Quick
            test_zero_rate_plan_is_identity;
        ] );
      ( "detection",
        [
          Alcotest.test_case "extsort flags corrupted instances" `Quick
            test_extsort_detects_corruption;
          Alcotest.test_case "fingerprint flags corrupted instances" `Quick
            test_fingerprint_detects_corruption;
          Alcotest.test_case "faulty sweeps identical for -j 1/2/4" `Slow
            test_faulty_runs_deterministic_across_pools;
        ] );
      ( "retry",
        [
          Alcotest.test_case "succeeds after transients" `Quick
            test_retry_succeeds_after_transients;
          Alcotest.test_case "gives up after K attempts" `Quick
            test_retry_gives_up_after_k;
          Alcotest.test_case "fatal propagates immediately" `Quick
            test_retry_fatal_propagates_immediately;
          Alcotest.test_case "backoff deterministic" `Quick
            test_backoff_deterministic;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "retried chunks keep their seeds" `Slow
            test_watchdog_retries_killed_chunks;
          Alcotest.test_case "exhausted retries propagate" `Quick
            test_watchdog_exhausts_retries;
          Alcotest.test_case "deadline overruns flagged" `Quick
            test_watchdog_deadline_flags_overruns;
        ] );
      ( "fail-fast",
        [
          Alcotest.test_case "off: overruns counted" `Quick
            test_fail_fast_off_counts_overruns;
          Alcotest.test_case "on: still raises" `Quick
            test_fail_fast_on_still_raises;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "store/lookup round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "corruption detected and discarded" `Quick
            test_checkpoint_detects_corruption;
          Alcotest.test_case "crc32 check values" `Quick test_crc32_known_values;
        ] );
    ]
