(* Tests for the instrumented tape substrate: reversal accounting,
   space accounting, metering, and budget enforcement. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_empty_tape () =
  let t = Tape.create ~blank:'_' () in
  check_int "blank read" (Char.code '_') (Char.code (Tape.read t));
  check_int "pos" 0 (Tape.position t);
  check_int "revs" 0 (Tape.reversals t);
  check "at left end" true (Tape.at_left_end t)

let test_read_write_move () =
  let t = Tape.of_list ~blank:0 [ 10; 20; 30 ] in
  check_int "cell0" 10 (Tape.read t);
  Tape.move t Tape.Right;
  check_int "cell1" 20 (Tape.read t);
  Tape.write t 99;
  check_int "overwritten" 99 (Tape.read t);
  Tape.move t Tape.Right;
  check_int "cell2" 30 (Tape.read t);
  check_int "no reversal yet" 0 (Tape.reversals t);
  Tape.move t Tape.Left;
  check_int "one reversal" 1 (Tape.reversals t);
  Tape.move t Tape.Left;
  check_int "still one" 1 (Tape.reversals t);
  Tape.move t Tape.Right;
  check_int "two reversals" 2 (Tape.reversals t)

let test_move_off_left () =
  let t = Tape.of_list ~blank:'_' [ 'a' ] in
  Alcotest.check_raises "left of 0" (Invalid_argument "Tape.move: left of position 0")
    (fun () -> Tape.move t Tape.Left)

let test_cells_used_grows () =
  let t = Tape.create ~blank:'_' () in
  for _ = 1 to 9 do
    Tape.move t Tape.Right
  done;
  check_int "10 cells visited" 10 (Tape.cells_used t);
  Tape.write t 'x';
  check_int "write does not extend past head" 10 (Tape.cells_used t)

let test_rewind () =
  let t = Tape.of_list ~blank:'_' [ 'a'; 'b'; 'c' ] in
  Tape.move t Tape.Right;
  Tape.move t Tape.Right;
  Tape.rewind t;
  check_int "rewound" 0 (Tape.position t);
  check_int "one reversal" 1 (Tape.reversals t);
  (* rewinding when already at 0 costs nothing *)
  Tape.rewind t;
  check_int "idempotent" 1 (Tape.reversals t);
  (* the documented invariant: a fresh head (position 0, moving Right)
     issues no movement at all - no reversal charged AND the direction
     is untouched, so a following rightward scan is still reversal-free.
     The fault layer's retried scans rely on this. *)
  let fresh = Tape.of_list ~blank:'_' [ 'a'; 'b' ] in
  Tape.rewind fresh;
  check_int "free on a fresh head" 0 (Tape.reversals fresh);
  check "direction preserved" true (Tape.head_direction fresh = Tape.Right);
  Tape.move fresh Tape.Right;
  check_int "subsequent rightward move still free" 0 (Tape.reversals fresh)

(* The constant-time rewind applies only to unhooked tapes; an observer
   (or injection hook) forces the per-cell loop. Whichever path runs,
   the resulting tape state must be identical. *)
let null_observer =
  {
    Tape.Observer.on_read = (fun ~pos:_ -> ());
    on_write = (fun ~pos:_ -> ());
    on_move = (fun ~pos:_ _ -> ());
  }

let test_rewind_fast_path_parity () =
  let run observed =
    let t = Tape.of_list ~blank:'_' [ 'a'; 'b'; 'c'; 'd' ] in
    if observed then Tape.set_observer t (Some null_observer);
    for _ = 1 to 3 do
      Tape.move t Tape.Right
    done;
    Tape.rewind t;
    (Tape.position t, Tape.reversals t, Tape.head_direction t = Tape.Left)
  in
  Alcotest.(check (triple int int bool))
    "loop path = fast path" (run true) (run false);
  (* and from a leftward-moving head: no extra reversal either way *)
  let run_leftward observed =
    let t = Tape.of_list ~blank:'_' [ 'a'; 'b'; 'c'; 'd' ] in
    if observed then Tape.set_observer t (Some null_observer);
    for _ = 1 to 3 do
      Tape.move t Tape.Right
    done;
    Tape.move t Tape.Left;
    Tape.rewind t;
    (Tape.position t, Tape.reversals t, Tape.head_direction t = Tape.Left)
  in
  Alcotest.(check (triple int int bool))
    "leftward head parity" (run_leftward true) (run_leftward false)

let test_rewind_budget_trip_parity () =
  (* a rewind that trips the scan budget must leave the same tape state
     on both paths: reversal charged, direction flipped, head unmoved *)
  let run observed =
    let g =
      Tape.Group.create
        ~budget:{ Tape.Group.max_scans = Some 1; max_internal = None }
        ()
    in
    let t = Tape.Group.tape_of_list g ~name:"t" ~blank:'_' [ 'a'; 'b'; 'c' ] in
    if observed then Tape.set_observer t (Some null_observer);
    for _ = 1 to 2 do
      Tape.move t Tape.Right
    done;
    let raised =
      try
        Tape.rewind t;
        false
      with Tape.Budget_exceeded _ -> true
    in
    ( raised,
      (Tape.position t, Tape.reversals t, Tape.head_direction t = Tape.Left) )
  in
  let ((raised, _) as loop) = run true in
  check "budget trips" true raised;
  Alcotest.(check (pair bool (triple int int bool)))
    "trip state parity" loop (run false)

let test_rewind_injection_sees_moves () =
  (* with a fault hook installed the per-cell loop runs, so the plan
     sees every head step of the rewind *)
  let moves = ref 0 in
  let hook =
    {
      Tape.Injection.on_read = (fun ~pos:_ _ -> Tape.Injection.Read_ok);
      on_write = (fun ~pos:_ _ -> Tape.Injection.Write_ok);
      on_move =
        (fun ~pos:_ _ ->
          incr moves;
          Tape.Injection.Move_ok);
    }
  in
  let t = Tape.of_list ~blank:'_' [ 'a'; 'b'; 'c'; 'd'; 'e' ] in
  for _ = 1 to 4 do
    Tape.move t Tape.Right
  done;
  Tape.set_injection t (Some hook);
  Tape.rewind t;
  check_int "hook saw every step" 4 !moves;
  check_int "rewound" 0 (Tape.position t);
  check_int "one reversal" 1 (Tape.reversals t)

let test_to_list_iter () =
  let t = Tape.of_list ~blank:'_' [ 'x'; 'y' ] in
  Alcotest.(check (list char)) "to_list" [ 'x'; 'y' ] (Tape.to_list t);
  let seen = ref [] in
  Tape.iter_right t (fun c -> seen := c :: !seen);
  Alcotest.(check (list char)) "iter" [ 'y'; 'x' ] !seen;
  (* iter_right from the middle *)
  let t2 = Tape.of_list ~blank:'_' [ 'a'; 'b'; 'c' ] in
  Tape.move t2 Tape.Right;
  let seen2 = ref [] in
  Tape.iter_right t2 (fun c -> seen2 := c :: !seen2);
  Alcotest.(check (list char)) "iter from middle" [ 'c'; 'b' ] !seen2

let test_meter () =
  let m = Tape.Meter.create () in
  Tape.Meter.alloc m 5;
  check_int "current" 5 (Tape.Meter.current m);
  Tape.Meter.free m 2;
  check_int "freed" 3 (Tape.Meter.current m);
  check_int "peak" 5 (Tape.Meter.peak m);
  let r = Tape.Meter.with_units m 10 (fun () -> Tape.Meter.current m) in
  check_int "inside" 13 r;
  check_int "after" 3 (Tape.Meter.current m);
  check_int "peak updated" 13 (Tape.Meter.peak m);
  Alcotest.check_raises "underflow" (Invalid_argument "Meter.free: underflow")
    (fun () -> Tape.Meter.free m 100)

let test_group_accounting () =
  let g = Tape.Group.create () in
  let t1 = Tape.Group.tape_of_list g ~name:"a" ~blank:'_' [ 'x'; 'y' ] in
  let t2 = Tape.Group.tape g ~name:"b" ~blank:'_' () in
  check_int "fresh scans" 1 (Tape.Group.scans g);
  Tape.move t1 Tape.Right;
  Tape.move t1 Tape.Left;
  Tape.move t2 Tape.Right;
  Tape.move t2 Tape.Left;
  check_int "two reversals" 2 (Tape.Group.total_reversals g);
  check_int "three scans" 3 (Tape.Group.scans g);
  let r = Tape.Group.report g in
  Alcotest.(check (list (pair string int)))
    "per tape"
    [ ("a", 1); ("b", 1) ]
    r.Tape.Group.reversals_by_tape

let test_group_budget_scans () =
  let g =
    Tape.Group.create
      ~budget:{ Tape.Group.max_scans = Some 2; max_internal = None }
      ()
  in
  let t = Tape.Group.tape_of_list g ~name:"t" ~blank:'_' [ 'a'; 'b'; 'c' ] in
  Tape.move t Tape.Right;
  Tape.move t Tape.Left (* scan 2: fine *);
  check "raises on third scan" true
    (try
       Tape.move t Tape.Right;
       false
     with Tape.Budget_exceeded _ -> true)

let test_group_budget_internal () =
  let g =
    Tape.Group.create
      ~budget:{ Tape.Group.max_scans = None; max_internal = Some 4 }
      ()
  in
  let m = Tape.Group.meter g in
  Tape.Meter.alloc m 4;
  check "raises past limit" true
    (try
       Tape.Meter.alloc m 1;
       false
     with Tape.Budget_exceeded _ -> true)

let test_double_registration () =
  let g = Tape.Group.create () in
  let t = Tape.Group.tape g ~blank:'_' () in
  Alcotest.check_raises "regrouped" (Invalid_argument "Group.add_tape: tape already grouped")
    (fun () -> Tape.Group.add_tape g t)

let prop_reversals_count_direction_changes =
  (* random walk: reversals = number of adjacent direction changes among
     executed moves *)
  QCheck.Test.make ~name:"reversal counting on random walks" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) bool)
    (fun dirs ->
      let t = Tape.create ~blank:0 () in
      let expected = ref 0 in
      let last = ref true (* Right *) in
      let executed = ref [] in
      List.iter
        (fun right ->
          let dir = if right then Tape.Right else Tape.Left in
          if (not right) && Tape.at_left_end t then ()
          else begin
            Tape.move t dir;
            executed := right :: !executed;
            if right <> !last then incr expected;
            last := right
          end)
        dirs;
      Tape.reversals t = !expected)

let () =
  Alcotest.run "tape"
    [
      ( "tape",
        [
          Alcotest.test_case "empty" `Quick test_empty_tape;
          Alcotest.test_case "read/write/move" `Quick test_read_write_move;
          Alcotest.test_case "left edge" `Quick test_move_off_left;
          Alcotest.test_case "cells_used" `Quick test_cells_used_grows;
          Alcotest.test_case "rewind" `Quick test_rewind;
          Alcotest.test_case "rewind fast-path parity" `Quick
            test_rewind_fast_path_parity;
          Alcotest.test_case "rewind budget-trip parity" `Quick
            test_rewind_budget_trip_parity;
          Alcotest.test_case "rewind under injection" `Quick
            test_rewind_injection_sees_moves;
          Alcotest.test_case "to_list/iter" `Quick test_to_list_iter;
          QCheck_alcotest.to_alcotest prop_reversals_count_direction_changes;
        ] );
      ( "meter",
        [ Alcotest.test_case "alloc/free/peak" `Quick test_meter ] );
      ( "group",
        [
          Alcotest.test_case "accounting" `Quick test_group_accounting;
          Alcotest.test_case "scan budget" `Quick test_group_budget_scans;
          Alcotest.test_case "internal budget" `Quick test_group_budget_internal;
          Alcotest.test_case "double registration" `Quick test_double_registration;
        ] );
    ]
